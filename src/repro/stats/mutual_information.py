"""Mutual information between address nybbles (§6 future work).

The paper notes: "our Bayesian Network model captures dependencies
between segments ... we did not study dependencies across nybbles
within segments.  We intend to do so in future research, possibly
employing the concept of mutual information."  This module implements
that study: empirical MI between nybble columns, a full pairwise MI
matrix, and a normalized variant suitable for heat-map rendering.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

import numpy as np

from repro.ipv6.sets import AddressSet
from repro.stats.entropy import entropy_of_counts

#: Number of possible nybble values.
_CARD = 16


def mutual_information(x: np.ndarray, y: np.ndarray) -> float:
    """Empirical MI I(X;Y) in nats between two nybble columns.

    I(X;Y) = H(X) + H(Y) - H(X,Y), estimated from the joint counts.
    Always >= 0 up to floating-point error.
    """
    x = np.asarray(x, dtype=np.int64)
    y = np.asarray(y, dtype=np.int64)
    if x.shape != y.shape:
        raise ValueError("columns must have equal length")
    if x.size == 0:
        return 0.0
    joint = np.bincount(x * _CARD + y, minlength=_CARD * _CARD)
    h_x = entropy_of_counts(np.bincount(x, minlength=_CARD))
    h_y = entropy_of_counts(np.bincount(y, minlength=_CARD))
    h_xy = entropy_of_counts(joint)
    return max(0.0, h_x + h_y - h_xy)


def normalized_mutual_information(x: np.ndarray, y: np.ndarray) -> float:
    """MI normalized to [0, 1] by min(H(X), H(Y)).

    1 means one column determines the other; 0 means independence.
    Degenerate (constant) columns have NMI 0 by convention.
    """
    x = np.asarray(x, dtype=np.int64)
    y = np.asarray(y, dtype=np.int64)
    h_x = entropy_of_counts(np.bincount(x, minlength=_CARD))
    h_y = entropy_of_counts(np.bincount(y, minlength=_CARD))
    denominator = min(h_x, h_y)
    if denominator <= 0:
        return 0.0
    return min(1.0, mutual_information(x, y) / denominator)


def mi_matrix(
    address_set: AddressSet, normalized: bool = True
) -> np.ndarray:
    """Pairwise (width x width) MI matrix over all nybble columns.

    The diagonal holds each column's self-NMI (1 for non-constant
    columns under normalization, H(X) otherwise).
    """
    matrix = address_set.matrix
    width = address_set.width
    measure = normalized_mutual_information if normalized else mutual_information
    result = np.zeros((width, width), dtype=np.float64)
    for i in range(width):
        for j in range(i, width):
            value = measure(matrix[:, i], matrix[:, j])
            result[i, j] = value
            result[j, i] = value
    return result


def top_dependent_pairs(
    address_set: AddressSet,
    limit: int = 10,
    min_nmi: float = 0.2,
) -> Sequence[Tuple[int, int, float]]:
    """The most-dependent non-adjacent column pairs, strongest first.

    Returns (position_i, position_j, nmi) with 1-indexed positions,
    skipping trivially-correlated adjacent columns so the output
    surfaces the long-range structure the BN cares about.
    """
    matrix = mi_matrix(address_set, normalized=True)
    width = matrix.shape[0]
    pairs = []
    for i in range(width):
        for j in range(i + 2, width):  # skip adjacent columns
            if matrix[i, j] >= min_nmi:
                pairs.append((i + 1, j + 1, float(matrix[i, j])))
    pairs.sort(key=lambda triple: -triple[2])
    return pairs[:limit]


def intra_segment_mi(
    address_set: AddressSet, first_nybble: int, last_nybble: int
) -> np.ndarray:
    """MI matrix restricted to one segment's nybbles (§6's question)."""
    if not 1 <= first_nybble <= last_nybble <= address_set.width:
        raise IndexError("invalid segment bounds")
    sub = AddressSet(address_set.matrix[:, first_nybble - 1 : last_nybble])
    return mi_matrix(sub, normalized=True)


def segment_string_entropy(
    address_set: AddressSet, first_nybble: int, last_nybble: int
) -> float:
    """Entropy of the segment viewed as one string, length-normalized.

    The §6 alternative: "an entropy measure of the string of nybbles
    within a segment, where the normalization considers the length of
    that segment".  Returns H(values) / (n_nybbles * log 16) ∈ [0, 1].
    """
    values = address_set.segment_values(first_nybble, last_nybble)
    _, counts = np.unique(values, return_counts=True)
    width = last_nybble - first_nybble + 1
    return entropy_of_counts(counts) / (width * math.log(_CARD))
