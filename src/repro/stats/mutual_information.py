"""Mutual information between address nybbles (§6 future work).

The paper notes: "our Bayesian Network model captures dependencies
between segments ... we did not study dependencies across nybbles
within segments.  We intend to do so in future research, possibly
employing the concept of mutual information."  This module implements
that study: empirical MI between nybble columns, a full pairwise MI
matrix, and a normalized variant suitable for heat-map rendering.

The pairwise scalar estimators (:func:`mutual_information`,
:func:`normalized_mutual_information`) are the reference definitions;
:func:`mi_matrix` no longer calls them per pair but derives the whole
``width × width`` matrix from the shared joint-count tensor of
:func:`repro.stats.entropy.nybble_contingency` — one fused bincount
over the address matrix — via ``I(X;Y) = H(X) + H(Y) - H(X,Y)`` with
every entropy computed by one vectorized pass over the count rows.
:func:`top_dependent_pairs` is then a thin argsort over that matrix.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.ipv6.sets import AddressSet
from repro.stats.entropy import (
    entropy_of_count_rows,
    entropy_of_counts,
    nybble_contingency,
)

#: Number of possible nybble values.
_CARD = 16


def mutual_information(x: np.ndarray, y: np.ndarray) -> float:
    """Empirical MI I(X;Y) in nats between two nybble columns.

    I(X;Y) = H(X) + H(Y) - H(X,Y), estimated from the joint counts.
    Always >= 0 up to floating-point error.
    """
    x = np.asarray(x, dtype=np.int64)
    y = np.asarray(y, dtype=np.int64)
    if x.shape != y.shape:
        raise ValueError("columns must have equal length")
    if x.size == 0:
        return 0.0
    joint = np.bincount(x * _CARD + y, minlength=_CARD * _CARD)
    h_x = entropy_of_counts(np.bincount(x, minlength=_CARD))
    h_y = entropy_of_counts(np.bincount(y, minlength=_CARD))
    h_xy = entropy_of_counts(joint)
    return max(0.0, h_x + h_y - h_xy)


def normalized_mutual_information(x: np.ndarray, y: np.ndarray) -> float:
    """MI normalized to [0, 1] by min(H(X), H(Y)).

    1 means one column determines the other; 0 means independence.
    Degenerate (constant) columns have NMI 0 by convention.
    """
    x = np.asarray(x, dtype=np.int64)
    y = np.asarray(y, dtype=np.int64)
    h_x = entropy_of_counts(np.bincount(x, minlength=_CARD))
    h_y = entropy_of_counts(np.bincount(y, minlength=_CARD))
    denominator = min(h_x, h_y)
    if denominator <= 0:
        return 0.0
    return min(1.0, mutual_information(x, y) / denominator)


def mi_matrix(
    address_set: AddressSet, normalized: bool = True
) -> np.ndarray:
    """Pairwise (width x width) MI matrix over all nybble columns.

    The diagonal holds each column's self-NMI (1 for non-constant
    columns under normalization, H(X) otherwise).  Derived in one
    contingency pass: the ``(width, width, 16, 16)`` joint tensor from
    :func:`~repro.stats.entropy.nybble_contingency` yields all joint
    and marginal entropies without touching the data again.
    """
    width = address_set.width
    if len(address_set) == 0:
        return np.zeros((width, width), dtype=np.float64)
    joint = nybble_contingency(address_set)
    h_joint = entropy_of_count_rows(
        joint.reshape(width, width, _CARD * _CARD)
    )
    marginal_counts = joint[:, 0, :, :].sum(axis=2)
    h = entropy_of_count_rows(marginal_counts)
    mi = np.maximum(0.0, h[:, np.newaxis] + h[np.newaxis, :] - h_joint)
    if normalized:
        denominator = np.minimum(h[:, np.newaxis], h[np.newaxis, :])
        safe = np.where(denominator > 0, denominator, 1.0)
        mi = np.where(denominator > 0, np.minimum(1.0, mi / safe), 0.0)
    # H(X_i, X_j) and H(X_j, X_i) sum the same 256 joint counts in
    # transposed order, which can differ in the last ulp; mirror the
    # upper triangle exactly like the pairwise loop did.
    lower = np.tril_indices(width, -1)
    mi[lower] = mi.T[lower]
    return mi


def _mi_matrix_pairwise(
    address_set: AddressSet, normalized: bool = True
) -> np.ndarray:
    """The pre-vectorization per-pair loop (reference for property tests)."""
    matrix = address_set.matrix
    width = address_set.width
    measure = normalized_mutual_information if normalized else mutual_information
    result = np.zeros((width, width), dtype=np.float64)
    for i in range(width):
        for j in range(i, width):
            value = measure(matrix[:, i], matrix[:, j])
            result[i, j] = value
            result[j, i] = value
    return result


def top_dependent_pairs(
    address_set: AddressSet,
    limit: int = 10,
    min_nmi: float = 0.2,
    matrix: Optional[np.ndarray] = None,
) -> Sequence[Tuple[int, int, float]]:
    """The most-dependent non-adjacent column pairs, strongest first.

    Returns (position_i, position_j, nmi) with 1-indexed positions,
    skipping trivially-correlated adjacent columns so the output
    surfaces the long-range structure the BN cares about.

    A thin argsort over the (cheap, single-pass) :func:`mi_matrix`
    output; pass ``matrix`` to reuse an already-computed NMI matrix
    instead of recomputing it.
    """
    if matrix is None:
        matrix = mi_matrix(address_set, normalized=True)
    width = matrix.shape[0]
    i_idx, j_idx = np.triu_indices(width, k=2)  # skip adjacent columns
    values = matrix[i_idx, j_idx]
    keep = values >= min_nmi
    i_idx, j_idx, values = i_idx[keep], j_idx[keep], values[keep]
    # Strongest first; ties keep (i, j) order like the stable list sort
    # of the scalar implementation did.
    order = np.argsort(-values, kind="stable")[:limit]
    return [
        (int(i_idx[k]) + 1, int(j_idx[k]) + 1, float(values[k]))
        for k in order
    ]


def intra_segment_mi(
    address_set: AddressSet, first_nybble: int, last_nybble: int
) -> np.ndarray:
    """MI matrix restricted to one segment's nybbles (§6's question)."""
    if not 1 <= first_nybble <= last_nybble <= address_set.width:
        raise IndexError("invalid segment bounds")
    sub = AddressSet(address_set.matrix[:, first_nybble - 1 : last_nybble])
    return mi_matrix(sub, normalized=True)


def segment_string_entropy(
    address_set: AddressSet, first_nybble: int, last_nybble: int
) -> float:
    """Entropy of the segment viewed as one string, length-normalized.

    The §6 alternative: "an entropy measure of the string of nybbles
    within a segment, where the normalization considers the length of
    that segment".  Returns H(values) / (n_nybbles * log 16) ∈ [0, 1].
    """
    values = address_set.segment_values(first_nybble, last_nybble)
    _, counts = np.unique(values, return_counts=True)
    width = last_nybble - first_nybble + 1
    return entropy_of_counts(counts) / (width * math.log(_CARD))
