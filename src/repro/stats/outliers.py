"""Tukey-fence outlier detection for the mining step (Section 4.3(a)).

    "Assuming normal distribution of frequencies of values, we select the
    values more common than Q3 + 1.5*IQR, where Q3 is the third quartile
    and IQR is the inter-quartile range."

Applied to a segment's value-frequency histogram, this surfaces unusually
prevalent values such as C1..C5 in Fig. 4.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.stats.histogram import Histogram


def tukey_fence(samples: Sequence[float], k: float = 1.5) -> float:
    """The upper Tukey fence Q3 + k*IQR of ``samples``.

    Uses linear-interpolation quartiles (the standard numpy default).
    """
    array = np.asarray(samples, dtype=np.float64)
    if array.size == 0:
        raise ValueError("cannot compute fence of empty sample")
    q1, q3 = np.percentile(array, [25, 75])
    return float(q3 + k * (q3 - q1))


def tukey_outlier_values(
    histogram: Histogram, k: float = 1.5, max_results: int = None
) -> List[Tuple[int, int]]:
    """Unusually prevalent values of a histogram, most frequent first.

    Returns (value, count) pairs whose count strictly exceeds the upper
    fence of the count distribution.  ``max_results`` caps the output
    (the paper nominates at most 10 per mining step).

    A histogram with a single distinct value has zero IQR, so that value
    is returned as the (sole) outlier — it plainly dominates the segment.
    """
    if len(histogram) == 0:
        return []
    counts = histogram.counts.astype(np.float64)
    if len(histogram) == 1:
        outliers = [(int(histogram.values[0]), int(histogram.counts[0]))]
        return outliers[:max_results] if max_results else outliers
    fence = tukey_fence(counts, k=k)
    if histogram.values.dtype == object:
        chosen = [
            (int(v), int(c))
            for v, c in zip(histogram.values, histogram.counts)
            if c > fence
        ]
        chosen.sort(key=lambda pair: (-pair[1], pair[0]))
        if max_results is not None:
            chosen = chosen[:max_results]
        return chosen
    # Vectorized: mask the fence, then one stable lexsort by
    # (-count, value) — values are already ascending, so a stable sort
    # on the negated counts alone reproduces the scalar tie order.
    mask = histogram.counts > fence
    values, over = histogram.values[mask], histogram.counts[mask]
    order = np.argsort(-over, kind="stable")
    if max_results is not None:
        order = order[:max_results]
    return [(int(values[i]), int(over[i])) for i in order]


def _tukey_outlier_values_scalar(
    histogram: Histogram, k: float = 1.5, max_results: int = None
) -> List[Tuple[int, int]]:
    """The pre-vectorization comprehension (reference fit path)."""
    if len(histogram) == 0:
        return []
    counts = histogram.counts.astype(np.float64)
    if len(histogram) == 1:
        outliers = [(int(histogram.values[0]), int(histogram.counts[0]))]
        return outliers[:max_results] if max_results else outliers
    fence = tukey_fence(counts, k=k)
    chosen = [
        (int(v), int(c))
        for v, c in zip(histogram.values, histogram.counts)
        if c > fence
    ]
    chosen.sort(key=lambda pair: (-pair[1], pair[0]))
    if max_results is not None:
        chosen = chosen[:max_results]
    return chosen
