"""Deterministic random-number-generator plumbing.

Every stochastic component in this repository (dataset generators, BN
sampling, train/test splits) takes an explicit ``numpy.random.Generator``
so experiments are reproducible bit-for-bit.  These helpers centralize
seeding conventions.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

#: Seed used by examples and benchmarks unless overridden.
DEFAULT_SEED = 0x1F6


def default_rng(seed: Optional[Union[int, np.random.Generator]] = None) -> np.random.Generator:
    """Build a Generator from a seed, pass one through, or use the default.

    Accepting an existing Generator makes it easy for callers to thread a
    single stream through a pipeline.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(DEFAULT_SEED if seed is None else seed)


def spawn_rng(rng: np.random.Generator, label: str) -> np.random.Generator:
    """Derive an independent, label-keyed child generator.

    Deriving per-component streams from (parent state, label) keeps
    components decoupled: adding draws to one component does not perturb
    another's stream.
    """
    label_seed = np.frombuffer(label.encode("utf-8"), dtype=np.uint8)
    mixed = int(rng.integers(0, 2**63)) ^ int(label_seed.sum() * 0x9E3779B1)
    return np.random.default_rng(mixed & 0x7FFFFFFFFFFFFFFF)
