"""Empirical entropy, as defined in Section 4.1 of the paper.

The paper uses Shannon entropy of the empirical distribution of values at
each nybble position, normalized by the maximum possible entropy
``log k`` (eq. 2), plus the *total entropy* ``H_S`` (eq. 3): the sum of
the 32 per-nybble normalized entropies.

Vectorization design
--------------------
The fit path (segmentation → mining → structure learning) and the §6
mutual-information study both reduce to counting nybble co-occurrences.
Instead of re-scanning the address matrix per column (or per column
pair), everything derives from one **shared contingency pass**:
:func:`nybble_contingency` fuses each row's ``(column_i, column_j)``
nybble pair into a single integer code ``16*x + y`` plus a per-pair
offset and runs ONE ``bincount`` over the fused codes, yielding the full
``(width, width, 16, 16)`` joint-count tensor.  Per-column marginal
counts are its diagonal blocks, per-column entropies come from
:func:`entropy_of_count_rows` (the row-vectorized form of
:func:`entropy_of_counts`), and the MI/NMI matrix of
:mod:`repro.stats.mutual_information` is ``H_i + H_j - H_ij`` over the
same tensor — no second scan of the data.

:func:`nybble_entropies` itself needs only the marginals, so it runs an
even cheaper single fused ``column*16 + value`` bincount.  The pre-PR
per-column scalar loop is retained as :func:`_nybble_entropies_scalar`
(the benchmark/golden reference path).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence, Tuple, Union

import numpy as np

from repro.ipv6.sets import AddressSet

#: Number of possible values of one nybble; ``log NYBBLE_CARDINALITY`` is
#: the normalizer of eq. (2).
NYBBLE_CARDINALITY = 16

#: Row-chunk size budget (in fused codes) of the contingency pass, so a
#: 100K-row training set never materializes an (n, width, width) tensor.
_CONTINGENCY_CHUNK_CODES = 4_000_000


def entropy_of_counts(counts: Sequence[float], base_cardinality: int = None) -> float:
    """Shannon entropy of a count vector, optionally normalized.

    With ``base_cardinality`` set, the result is divided by
    ``log(base_cardinality)`` (the paper's normalization); otherwise the
    raw entropy in nats is returned.

    >>> entropy_of_counts([2, 3], base_cardinality=16)  # eq. (2) example
    0.242792...
    """
    array = np.asarray(counts, dtype=np.float64)
    array = array[array > 0]
    total = array.sum()
    if total <= 0 or array.size <= 1:
        entropy = 0.0
    else:
        p = array / total
        entropy = float(-(p * np.log(p)).sum())
    if base_cardinality is not None:
        if base_cardinality < 2:
            raise ValueError("base_cardinality must be >= 2")
        entropy /= math.log(base_cardinality)
    return entropy


def entropy_of_count_rows(
    counts: np.ndarray, base_cardinality: int = None
) -> np.ndarray:
    """Vectorized :func:`entropy_of_counts` over the last axis.

    ``counts`` has shape ``(..., k)``; the result has shape ``(...)``
    and equals applying :func:`entropy_of_counts` to every length-``k``
    slice (rows with at most one positive entry are exactly 0, matching
    the scalar convention).
    """
    array = np.asarray(counts, dtype=np.float64)
    positive = array > 0
    totals = array.sum(axis=-1, where=positive, keepdims=True)
    safe_totals = np.where(totals > 0, totals, 1.0)
    p = np.where(positive, array, 1.0) / safe_totals
    entropies = -np.sum(p * np.log(p), axis=-1, where=positive)
    degenerate = (totals[..., 0] <= 0) | (positive.sum(axis=-1) <= 1)
    entropies = np.where(degenerate, 0.0, entropies)
    if base_cardinality is not None:
        if base_cardinality < 2:
            raise ValueError("base_cardinality must be >= 2")
        entropies = entropies / math.log(base_cardinality)
    return entropies


def empirical_entropy(
    values: Iterable[Union[int, str]], base_cardinality: int = None
) -> float:
    """Entropy of the empirical distribution of ``values``."""
    counts: Dict[Union[int, str], int] = {}
    for value in values:
        counts[value] = counts.get(value, 0) + 1
    return entropy_of_counts(list(counts.values()), base_cardinality)


def nybble_counts(address_set: AddressSet) -> np.ndarray:
    """Per-column value counts as a ``(width, 16)`` matrix, in one pass.

    Column ``i``'s nybble values are fused into ``16*i + value`` codes
    and counted with a single ``bincount`` over the whole matrix.
    """
    matrix = address_set.matrix
    n, width = matrix.shape
    if n == 0:
        return np.zeros((width, NYBBLE_CARDINALITY), dtype=np.int64)
    offsets = np.arange(width, dtype=np.int64) * NYBBLE_CARDINALITY
    fused = matrix.astype(np.int64, copy=False) + offsets[np.newaxis, :]
    counts = np.bincount(
        fused.ravel(), minlength=width * NYBBLE_CARDINALITY
    )
    return counts.reshape(width, NYBBLE_CARDINALITY)


def nybble_entropies(address_set: AddressSet) -> np.ndarray:
    """Normalized entropy of each nybble column (eq. 1-2).

    Returns an array of ``width`` floats in [0, 1]; element ``i`` is
    ``H^(X_{i+1})`` of Section 4.1.  One fused bincount over the whole
    matrix replaces the per-column loop (retained as
    :func:`_nybble_entropies_scalar`).
    """
    width = address_set.width
    if len(address_set) == 0:
        return np.zeros(width, dtype=np.float64)
    counts = nybble_counts(address_set)
    return entropy_of_count_rows(counts) / math.log(NYBBLE_CARDINALITY)


def _nybble_entropies_scalar(address_set: AddressSet) -> np.ndarray:
    """The pre-vectorization per-column loop (benchmark reference path)."""
    matrix = address_set.matrix
    n, width = matrix.shape
    result = np.zeros(width, dtype=np.float64)
    if n == 0:
        return result
    log_norm = math.log(NYBBLE_CARDINALITY)
    for column in range(width):
        counts = np.bincount(matrix[:, column], minlength=NYBBLE_CARDINALITY)
        result[column] = entropy_of_counts(counts) / log_norm
    return result


def nybble_contingency(address_set: AddressSet) -> np.ndarray:
    """Joint nybble counts for every column pair, from one fused pass.

    Returns a ``(width, width, 16, 16)`` tensor ``J`` with
    ``J[i, j, a, b]`` = number of rows where column ``i`` holds ``a``
    and column ``j`` holds ``b``.  Each row contributes one fused code
    ``256*(i*width + j) + 16*a + b`` per ordered column pair and a
    single ``bincount`` (chunked over rows to bound memory) counts them
    all — entropies, the MI/NMI matrix and any pairwise dependence
    statistic then derive from this tensor without re-scanning rows.

    ``J[i, i]`` is the diagonal matrix of column ``i``'s marginal
    counts; ``J[i, j].sum(axis=1)`` recovers the same marginal for any
    ``j``.
    """
    matrix = address_set.matrix
    n, width = matrix.shape
    cells = NYBBLE_CARDINALITY * NYBBLE_CARDINALITY
    counts = np.zeros(width * width * cells, dtype=np.int64)
    if n == 0:
        return counts.reshape(width, width, NYBBLE_CARDINALITY, NYBBLE_CARDINALITY)
    offsets = (np.arange(width * width, dtype=np.int64) * cells).reshape(
        width, width
    )
    chunk = max(1, _CONTINGENCY_CHUNK_CODES // (width * width))
    for start in range(0, n, chunk):
        block = matrix[start : start + chunk].astype(np.int64, copy=False)
        fused = (
            block[:, :, np.newaxis] * NYBBLE_CARDINALITY
            + block[:, np.newaxis, :]
            + offsets[np.newaxis, :, :]
        )
        counts += np.bincount(fused.ravel(), minlength=counts.size)
    return counts.reshape(width, width, NYBBLE_CARDINALITY, NYBBLE_CARDINALITY)


def total_entropy(address_set: AddressSet) -> float:
    """Total entropy H_S (eq. 3): the sum of per-nybble entropies.

    Quantifies how hard it is to guess addresses in the set by chance;
    e.g. the paper reports H_S = 4.6 for router dataset R1 and
    H_S = 21.2 for client dataset C1.
    """
    return float(nybble_entropies(address_set).sum())


def windowed_entropy(
    address_set: AddressSet,
    bit_step: int = 4,
) -> List[Tuple[int, int, float]]:
    """Unnormalized entropy for every (position, length) address window.

    This reproduces the "windowing analysis" of Section 4.5 / Fig. 5:
    for every window of ``length`` bits starting at ``position`` bits
    (both multiples of ``bit_step``), compute the entropy (in bits,
    unnormalized) of the window's values across the set.

    Returns a list of ``(position_bits, length_bits, entropy_bits)``.
    Windows wider than 64 bits are skipped (their values would not be
    vectorizable and the paper's Fig. 5 colour scale saturates well below
    that anyway — entropy is capped by ``log2 n``).

    Window values are packed *incrementally*: the window ``(start,
    stop)`` extends the packed values of ``(start, stop - step)`` with a
    few shift-or steps instead of re-packing its nybbles from scratch,
    so the whole quadratic window sweep re-reads each matrix column a
    constant number of times per start position.
    """
    if bit_step % 4 != 0:
        raise ValueError("bit_step must be a multiple of 4 (nybble-aligned)")
    nybble_step = bit_step // 4
    matrix = address_set.matrix
    width = address_set.width
    log2 = math.log(2)
    results: List[Tuple[int, int, float]] = []
    for start in range(0, width, nybble_step):
        values = np.zeros(len(address_set), dtype=np.uint64)
        for stop in range(start + nybble_step, width + 1, nybble_step):
            if (stop - start) * 4 > 64:
                break  # every later stop is wider still
            for column in range(stop - nybble_step, stop):
                values = (values << np.uint64(4)) | matrix[:, column].astype(
                    np.uint64
                )
            _, counts = np.unique(values, return_counts=True)
            entropy_nats = entropy_of_counts(counts)
            results.append((start * 4, (stop - start) * 4, entropy_nats / log2))
    return results


def entropy_profile(address_set: AddressSet) -> Dict[str, object]:
    """Convenience bundle: per-nybble entropies plus H_S."""
    entropies = nybble_entropies(address_set)
    return {
        "per_nybble": entropies,
        "total": float(entropies.sum()),
        "n": len(address_set),
        "width": address_set.width,
    }
