"""Empirical entropy, as defined in Section 4.1 of the paper.

The paper uses Shannon entropy of the empirical distribution of values at
each nybble position, normalized by the maximum possible entropy
``log k`` (eq. 2), plus the *total entropy* ``H_S`` (eq. 3): the sum of
the 32 per-nybble normalized entropies.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence, Tuple, Union

import numpy as np

from repro.ipv6.sets import AddressSet

#: Number of possible values of one nybble; ``log NYBBLE_CARDINALITY`` is
#: the normalizer of eq. (2).
NYBBLE_CARDINALITY = 16


def entropy_of_counts(counts: Sequence[float], base_cardinality: int = None) -> float:
    """Shannon entropy of a count vector, optionally normalized.

    With ``base_cardinality`` set, the result is divided by
    ``log(base_cardinality)`` (the paper's normalization); otherwise the
    raw entropy in nats is returned.

    >>> entropy_of_counts([2, 3], base_cardinality=16)  # eq. (2) example
    0.242792...
    """
    array = np.asarray(counts, dtype=np.float64)
    array = array[array > 0]
    total = array.sum()
    if total <= 0 or array.size <= 1:
        entropy = 0.0
    else:
        p = array / total
        entropy = float(-(p * np.log(p)).sum())
    if base_cardinality is not None:
        if base_cardinality < 2:
            raise ValueError("base_cardinality must be >= 2")
        entropy /= math.log(base_cardinality)
    return entropy


def empirical_entropy(
    values: Iterable[Union[int, str]], base_cardinality: int = None
) -> float:
    """Entropy of the empirical distribution of ``values``."""
    counts: Dict[Union[int, str], int] = {}
    for value in values:
        counts[value] = counts.get(value, 0) + 1
    return entropy_of_counts(list(counts.values()), base_cardinality)


def nybble_entropies(address_set: AddressSet) -> np.ndarray:
    """Normalized entropy of each nybble column (eq. 1-2).

    Returns an array of ``width`` floats in [0, 1]; element ``i`` is
    ``H^(X_{i+1})`` of Section 4.1.
    """
    matrix = address_set.matrix
    n, width = matrix.shape
    result = np.zeros(width, dtype=np.float64)
    if n == 0:
        return result
    log_norm = math.log(NYBBLE_CARDINALITY)
    for column in range(width):
        counts = np.bincount(matrix[:, column], minlength=NYBBLE_CARDINALITY)
        result[column] = entropy_of_counts(counts) / log_norm
    return result


def total_entropy(address_set: AddressSet) -> float:
    """Total entropy H_S (eq. 3): the sum of per-nybble entropies.

    Quantifies how hard it is to guess addresses in the set by chance;
    e.g. the paper reports H_S = 4.6 for router dataset R1 and
    H_S = 21.2 for client dataset C1.
    """
    return float(nybble_entropies(address_set).sum())


def windowed_entropy(
    address_set: AddressSet,
    bit_step: int = 4,
) -> List[Tuple[int, int, float]]:
    """Unnormalized entropy for every (position, length) address window.

    This reproduces the "windowing analysis" of Section 4.5 / Fig. 5:
    for every window of ``length`` bits starting at ``position`` bits
    (both multiples of ``bit_step``), compute the entropy (in bits,
    unnormalized) of the window's values across the set.

    Returns a list of ``(position_bits, length_bits, entropy_bits)``.
    Windows wider than 64 bits are skipped (their values would not be
    vectorizable and the paper's Fig. 5 colour scale saturates well below
    that anyway — entropy is capped by ``log2 n``).
    """
    if bit_step % 4 != 0:
        raise ValueError("bit_step must be a multiple of 4 (nybble-aligned)")
    nybble_step = bit_step // 4
    width = address_set.width
    results: List[Tuple[int, int, float]] = []
    for start in range(0, width, nybble_step):
        for stop in range(start + nybble_step, width + 1, nybble_step):
            if (stop - start) * 4 > 64:
                continue
            values = address_set.segment_values(start + 1, stop)
            _, counts = np.unique(values, return_counts=True)
            entropy_nats = entropy_of_counts(counts)
            results.append((start * 4, (stop - start) * 4, entropy_nats / math.log(2)))
    return results


def entropy_profile(address_set: AddressSet) -> Dict[str, object]:
    """Convenience bundle: per-nybble entropies plus H_S."""
    entropies = nybble_entropies(address_set)
    return {
        "per_nybble": entropies,
        "total": float(entropies.sum()),
        "n": len(address_set),
        "width": address_set.width,
    }
