"""Value-frequency histograms for segment mining (Section 4.3).

The mining heuristic looks at a segment's data three ways: raw value
frequencies (outlier step), the multiset of values (value-space DBSCAN),
and the histogram viewed as (value, count) points (histogram DBSCAN).
:class:`Histogram` is the shared representation.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np


def value_counts(values: Iterable[int]) -> Dict[int, int]:
    """Exact counts of each distinct value."""
    counts: Dict[int, int] = {}
    for value in values:
        key = int(value)
        counts[key] = counts.get(key, 0) + 1
    return counts


class Histogram:
    """A sparse histogram over non-negative integer values.

    Stores sorted distinct values and their counts; provides the views
    the mining steps need.

    >>> h = Histogram.from_values([1, 1, 2, 9])
    >>> h.values.tolist(), h.counts.tolist()
    ([1, 2, 9], [2, 1, 1])
    >>> h.total
    4
    """

    __slots__ = ("values", "counts")

    def __init__(self, values: Sequence[int], counts: Sequence[int]):
        self.values = np.asarray(values, dtype=object if _needs_object(values) else np.uint64)
        self.counts = np.asarray(counts, dtype=np.int64)
        if len(self.values) != len(self.counts):
            raise ValueError("values and counts must have equal length")
        if len(self.values) > 1 and not all(
            self.values[i] < self.values[i + 1] for i in range(len(self.values) - 1)
        ):
            raise ValueError("values must be strictly increasing")
        if np.any(self.counts <= 0):
            raise ValueError("counts must be positive")

    @classmethod
    def from_values(cls, values: Iterable[int]) -> "Histogram":
        """Build from a multiset of values."""
        counts = value_counts(values)
        ordered = sorted(counts)
        return cls(ordered, [counts[v] for v in ordered])

    @property
    def total(self) -> int:
        """Total number of observations."""
        return int(self.counts.sum())

    @property
    def distinct(self) -> int:
        """Number of distinct values."""
        return len(self.values)

    def min_value(self) -> int:
        if not len(self.values):
            raise ValueError("empty histogram")
        return int(self.values[0])

    def max_value(self) -> int:
        if not len(self.values):
            raise ValueError("empty histogram")
        return int(self.values[-1])

    def frequency(self, value: int) -> float:
        """Relative frequency of ``value`` (0.0 if unseen)."""
        index = np.searchsorted(self.values.astype(object), value)
        if index < len(self.values) and int(self.values[index]) == value:
            return float(self.counts[index]) / self.total
        return 0.0

    def count_in_range(self, low: int, high: int) -> int:
        """Total count of observations with ``low <= value <= high``."""
        mask = [(low <= int(v) <= high) for v in self.values]
        return int(self.counts[np.asarray(mask, dtype=bool)].sum()) if mask else 0

    def remove_values(self, to_remove: Iterable[int]) -> "Histogram":
        """New histogram with the given distinct values dropped."""
        removal = {int(v) for v in to_remove}
        keep = [i for i, v in enumerate(self.values) if int(v) not in removal]
        return Histogram(
            [int(self.values[i]) for i in keep],
            [int(self.counts[i]) for i in keep],
        )

    def remove_range(self, low: int, high: int) -> "Histogram":
        """New histogram with all values in [low, high] dropped."""
        keep = [i for i, v in enumerate(self.values) if not low <= int(v) <= high]
        return Histogram(
            [int(self.values[i]) for i in keep],
            [int(self.counts[i]) for i in keep],
        )

    def items(self) -> List[Tuple[int, int]]:
        """Sorted (value, count) pairs."""
        return [(int(v), int(c)) for v, c in zip(self.values, self.counts)]

    def expand(self) -> List[int]:
        """Back to a sorted multiset (careful with large totals)."""
        result: List[int] = []
        for value, count in self.items():
            result.extend([value] * count)
        return result

    def __len__(self) -> int:
        return len(self.values)

    def __repr__(self) -> str:
        return f"Histogram(distinct={self.distinct}, total={self.total})"


def _needs_object(values: Sequence[int]) -> bool:
    """True if any value exceeds the uint64 range."""
    return any(int(v) >= (1 << 64) for v in values)
