"""Value-frequency histograms for segment mining (Section 4.3).

The mining heuristic looks at a segment's data three ways: raw value
frequencies (outlier step), the multiset of values (value-space DBSCAN),
and the histogram viewed as (value, count) points (histogram DBSCAN).
:class:`Histogram` is the shared representation.

The hot constructors and range operations are array-native: histograms
build from a raw value array with one ``np.unique`` pass
(:meth:`Histogram.from_array`), and range queries / removals are
``searchsorted`` slices over the sorted value array.  Values wider than
64 bits (possible only when the hard /32 and /64 segmentation cuts are
disabled) fall back to Python-int object arrays, for which every
operation keeps the original scalar behaviour.  The pre-vectorization
scalar implementations are retained wholesale on
:class:`_ReferenceHistogram` — the ``EntropyIP._fit_reference``
benchmark path mines with it.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np


#: Largest representable histogram value (range queries clamp to it).
_UINT64_MAX = int(np.iinfo(np.uint64).max)


def value_counts(values: Iterable[int]) -> Dict[int, int]:
    """Exact counts of each distinct value."""
    counts: Dict[int, int] = {}
    for value in values:
        key = int(value)
        counts[key] = counts.get(key, 0) + 1
    return counts


class Histogram:
    """A sparse histogram over non-negative integer values.

    Stores sorted distinct values and their counts; provides the views
    the mining steps need.

    >>> h = Histogram.from_values([1, 1, 2, 9])
    >>> h.values.tolist(), h.counts.tolist()
    ([1, 2, 9], [2, 1, 1])
    >>> h.total
    4
    """

    __slots__ = ("values", "counts")

    def __init__(self, values: Sequence[int], counts: Sequence[int]):
        self.values = np.asarray(values, dtype=object if _needs_object(values) else np.uint64)
        self.counts = np.asarray(counts, dtype=np.int64)
        if len(self.values) != len(self.counts):
            raise ValueError("values and counts must have equal length")
        if len(self.values) > 1 and not all(
            self.values[i] < self.values[i + 1] for i in range(len(self.values) - 1)
        ):
            raise ValueError("values must be strictly increasing")
        if np.any(self.counts <= 0):
            raise ValueError("counts must be positive")

    @classmethod
    def from_values(cls, values: Iterable[int]) -> "Histogram":
        """Build from a multiset of values (scalar counting loop)."""
        counts = value_counts(values)
        ordered = sorted(counts)
        return cls(ordered, [counts[v] for v in ordered])

    @classmethod
    def from_array(cls, values: np.ndarray) -> "Histogram":
        """Build from a value array in one vectorized ``np.unique`` pass.

        Object-dtype inputs (segment values wider than 64 bits) route
        through the scalar constructor.
        """
        array = np.asarray(values)
        if array.dtype == object:
            return cls.from_values(int(v) for v in array)
        uniques, counts = np.unique(array, return_counts=True)
        return cls._trusted(
            uniques.astype(np.uint64, copy=False), counts.astype(np.int64)
        )

    @classmethod
    def _trusted(cls, values: np.ndarray, counts: np.ndarray) -> "Histogram":
        """Adopt already-sorted-unique arrays, skipping validation.

        Internal: every caller guarantees strictly increasing values and
        positive counts (slices of an existing histogram, ``np.unique``
        output).
        """
        histogram = object.__new__(cls)
        histogram.values = values
        histogram.counts = counts
        return histogram

    @property
    def total(self) -> int:
        """Total number of observations."""
        return int(self.counts.sum())

    @property
    def distinct(self) -> int:
        """Number of distinct values."""
        return len(self.values)

    def min_value(self) -> int:
        if not len(self.values):
            raise ValueError("empty histogram")
        return int(self.values[0])

    def max_value(self) -> int:
        if not len(self.values):
            raise ValueError("empty histogram")
        return int(self.values[-1])

    def frequency(self, value: int) -> float:
        """Relative frequency of ``value`` (0.0 if unseen)."""
        index = np.searchsorted(self.values.astype(object), value)
        if index < len(self.values) and int(self.values[index]) == value:
            return float(self.counts[index]) / self.total
        return 0.0

    def _range_slice(self, low: int, high: int) -> Tuple[int, int]:
        """Index slice [start, stop) of values inside ``[low, high]``."""
        low = max(int(low), 0)
        high = min(int(high), _UINT64_MAX)
        if high < low or low > _UINT64_MAX:
            return (0, 0)
        start = self.values.searchsorted(np.uint64(low), side="left")
        stop = self.values.searchsorted(np.uint64(high), side="right")
        return (int(start), int(stop))

    def count_in_range(self, low: int, high: int) -> int:
        """Total count of observations with ``low <= value <= high``."""
        if self.values.dtype == object:
            mask = [(low <= int(v) <= high) for v in self.values]
            return int(self.counts[np.asarray(mask, dtype=bool)].sum()) if mask else 0
        start, stop = self._range_slice(low, high)
        return int(self.counts[start:stop].sum())

    def remove_values(self, to_remove: Iterable[int]) -> "Histogram":
        """New histogram with the given distinct values dropped."""
        removal = {int(v) for v in to_remove}
        if self.values.dtype == object:
            keep = [i for i, v in enumerate(self.values) if int(v) not in removal]
            return Histogram(
                [int(self.values[i]) for i in keep],
                [int(self.counts[i]) for i in keep],
            )
        if not removal:
            return type(self)._trusted(self.values, self.counts)
        removed = np.fromiter(
            (v for v in removal if 0 <= v <= _UINT64_MAX),
            dtype=np.uint64,
        )
        keep = ~np.isin(self.values, removed)
        return type(self)._trusted(self.values[keep], self.counts[keep])

    def remove_range(self, low: int, high: int) -> "Histogram":
        """New histogram with all values in [low, high] dropped."""
        if self.values.dtype == object:
            keep = [i for i, v in enumerate(self.values) if not low <= int(v) <= high]
            return Histogram(
                [int(self.values[i]) for i in keep],
                [int(self.counts[i]) for i in keep],
            )
        start, stop = self._range_slice(low, high)
        return type(self)._trusted(
            np.concatenate([self.values[:start], self.values[stop:]]),
            np.concatenate([self.counts[:start], self.counts[stop:]]),
        )

    def items(self) -> List[Tuple[int, int]]:
        """Sorted (value, count) pairs."""
        return [(int(v), int(c)) for v, c in zip(self.values, self.counts)]

    def expand(self) -> List[int]:
        """Back to a sorted multiset (careful with large totals)."""
        result: List[int] = []
        for value, count in self.items():
            result.extend([value] * count)
        return result

    def __len__(self) -> int:
        return len(self.values)

    def __repr__(self) -> str:
        return f"Histogram(distinct={self.distinct}, total={self.total})"


class _ReferenceHistogram(Histogram):
    """The pre-vectorization scalar implementations, retained verbatim.

    ``EntropyIP._fit_reference`` mines with this class so the benchmark
    reference measures the original per-value Python cost.  Results are
    identical to :class:`Histogram` — only the implementation differs.
    """

    __slots__ = ()

    def count_in_range(self, low: int, high: int) -> int:
        mask = [(low <= int(v) <= high) for v in self.values]
        return int(self.counts[np.asarray(mask, dtype=bool)].sum()) if mask else 0

    def remove_values(self, to_remove: Iterable[int]) -> "Histogram":
        removal = {int(v) for v in to_remove}
        keep = [i for i, v in enumerate(self.values) if int(v) not in removal]
        return _ReferenceHistogram(
            [int(self.values[i]) for i in keep],
            [int(self.counts[i]) for i in keep],
        )

    def remove_range(self, low: int, high: int) -> "Histogram":
        keep = [i for i, v in enumerate(self.values) if not low <= int(v) <= high]
        return _ReferenceHistogram(
            [int(self.values[i]) for i in keep],
            [int(self.counts[i]) for i in keep],
        )


def _needs_object(values: Sequence[int]) -> bool:
    """True if any value exceeds the uint64 range."""
    return any(int(v) >= (1 << 64) for v in values)
