"""Statistical substrate: entropy, histograms, outlier detection, RNG.

Implements the information-theoretic core of Section 4.1 (empirical
normalized entropy, total entropy H_S) plus the frequency-analysis
helpers the segment-mining step of Section 4.3 relies on.
"""

from repro.stats.entropy import (
    empirical_entropy,
    entropy_of_counts,
    nybble_entropies,
    total_entropy,
    windowed_entropy,
)
from repro.stats.histogram import Histogram, value_counts
from repro.stats.mutual_information import (
    intra_segment_mi,
    mi_matrix,
    mutual_information,
    normalized_mutual_information,
    segment_string_entropy,
    top_dependent_pairs,
)
from repro.stats.outliers import tukey_fence, tukey_outlier_values
from repro.stats.rng import default_rng, spawn_rng

__all__ = [
    "Histogram",
    "intra_segment_mi",
    "mi_matrix",
    "mutual_information",
    "normalized_mutual_information",
    "segment_string_entropy",
    "top_dependent_pairs",
    "default_rng",
    "empirical_entropy",
    "entropy_of_counts",
    "nybble_entropies",
    "spawn_rng",
    "total_entropy",
    "tukey_fence",
    "tukey_outlier_values",
    "value_counts",
    "windowed_entropy",
]
