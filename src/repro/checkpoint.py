"""Versioned on-disk checkpoint files for sessions and ingest state.

One tiny container format shared by every checkpointable component
(:meth:`GenerationSession.snapshot`, :meth:`ManagedSession.snapshot`,
:meth:`IngestPipeline.snapshot`): a magic string, a format version, a
``kind`` tag naming what was checkpointed, a payload, and a digest of
the payload bytes.  The payload itself is a plain dict of
numpy arrays / ints / strings produced by the component's
``snapshot()`` and consumed by its ``restore()`` — this module only
owns the envelope.

Why a bespoke envelope rather than bare ``pickle.dump``: restores must
fail *loudly and typed* (:class:`~repro.errors.CheckpointError`) on
the three realistic corruptions — a file that is not a checkpoint at
all, a checkpoint written by an incompatible future version, and a
checkpoint of the wrong kind (pointing ``ingest --resume`` at a
session checkpoint) — rather than unpickling garbage into a running
service.  A sha256 over the payload bytes additionally catches
truncation from the very crash scenarios this layer exists for.

Writes are atomic (temp file + ``os.replace`` in the target
directory), so a checkpoint file is always either the complete old
state or the complete new state — a process killed mid-write leaves
the previous checkpoint intact, which is exactly what resume needs.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import struct
import tempfile
from typing import Any, Dict, Optional

from repro.errors import CheckpointError
from repro.faults import fault_point

#: Leading bytes of every checkpoint file.
MAGIC = b"REPRO-CKPT"

#: Current envelope format version.  Bump on incompatible layout
#: changes; ``load_checkpoint`` refuses versions it does not know.
FORMAT_VERSION = 1

_HEADER = struct.Struct("<10sHH32sQ")  # magic, version, kind_len, sha256, payload_len


def save_checkpoint(path: str, kind: str, payload: Dict[str, Any]) -> None:
    """Atomically write ``payload`` as a ``kind`` checkpoint at ``path``."""
    body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    kind_bytes = kind.encode("utf-8")
    if len(kind_bytes) > 0xFFFF:  # pragma: no cover - absurd input only
        raise ValueError("checkpoint kind too long")
    header = _HEADER.pack(
        MAGIC,
        FORMAT_VERSION,
        len(kind_bytes),
        hashlib.sha256(body).digest(),
        len(body),
    )
    fault_point("checkpoint.save")
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp = tempfile.mkstemp(prefix=".ckpt-", dir=directory)
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(header)
            handle.write(kind_bytes)
            handle.write(body)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def load_checkpoint(path: str, kind: Optional[str] = None) -> Dict[str, Any]:
    """Read a checkpoint back; validate envelope, version, kind, digest.

    ``kind=None`` accepts any kind (the caller can inspect the
    ``"kind"`` key of the returned dict's envelope via
    :func:`checkpoint_kind`); otherwise a mismatch raises
    :class:`~repro.errors.CheckpointError`.
    """
    try:
        with open(path, "rb") as handle:
            raw_header = handle.read(_HEADER.size)
            if len(raw_header) < _HEADER.size:
                raise CheckpointError(
                    f"checkpoint {path!r} is truncated (no complete header)"
                )
            magic, version, kind_len, digest, body_len = _HEADER.unpack(
                raw_header
            )
            if magic != MAGIC:
                raise CheckpointError(
                    f"checkpoint {path!r} is not a repro checkpoint file"
                )
            if version != FORMAT_VERSION:
                raise CheckpointError(
                    f"checkpoint {path!r} has format version {version}, "
                    f"this build reads version {FORMAT_VERSION}"
                )
            file_kind = handle.read(kind_len).decode("utf-8")
            body = handle.read(body_len)
    except OSError as exc:
        raise CheckpointError(
            f"checkpoint {path!r} could not be read: {exc}"
        ) from exc
    if kind is not None and file_kind != kind:
        raise CheckpointError(
            f"checkpoint {path!r} holds {file_kind!r} state, "
            f"expected {kind!r}"
        )
    if len(body) != body_len or hashlib.sha256(body).digest() != digest:
        raise CheckpointError(
            f"checkpoint {path!r} payload is truncated or corrupt "
            f"(digest mismatch)"
        )
    try:
        payload = pickle.loads(body)
    except Exception as exc:
        raise CheckpointError(
            f"checkpoint {path!r} payload failed to deserialize: {exc}"
        ) from exc
    if not isinstance(payload, dict):
        raise CheckpointError(
            f"checkpoint {path!r} payload is {type(payload).__name__}, "
            f"expected dict"
        )
    return payload


def checkpoint_kind(path: str) -> str:
    """The ``kind`` tag of the checkpoint at ``path`` (header only)."""
    try:
        with open(path, "rb") as handle:
            raw_header = handle.read(_HEADER.size)
            if len(raw_header) < _HEADER.size:
                raise CheckpointError(
                    f"checkpoint {path!r} is truncated (no complete header)"
                )
            magic, version, kind_len, _, _ = _HEADER.unpack(raw_header)
            if magic != MAGIC:
                raise CheckpointError(
                    f"checkpoint {path!r} is not a repro checkpoint file"
                )
            return handle.read(kind_len).decode("utf-8")
    except OSError as exc:
        raise CheckpointError(
            f"checkpoint {path!r} could not be read: {exc}"
        ) from exc


__all__ = [
    "FORMAT_VERSION",
    "MAGIC",
    "checkpoint_kind",
    "load_checkpoint",
    "save_checkpoint",
]
