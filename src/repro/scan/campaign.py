"""Budgeted scanning campaigns: the operational side of §5.5.

The paper's evaluation scores a fixed 1M-candidate batch.  A real
survey (zmap-style, [8]) runs under a *probe budget* and wants hits as
early as possible.  :class:`ScanCampaign` drives a fitted Entropy/IP
model against a responder in rounds, records the progressive discovery
curve, and optionally *adapts*: addresses confirmed in earlier rounds
are folded back into the training set and the model is refitted — the
bootstrap loop the paper sketches ("use them to bootstrap active
address discovery").

The loop is array-native: probed addresses accumulate as a packed
uint64 word matrix fed straight into the model's vectorized exclusion
(no million-entry Python set rebuilt — and nothing re-packed — per
round), hits come from the responder's boolean
:meth:`~repro.scan.responder.SimulatedResponder.ping_mask`, and the
"new /64s" accounting subtracts uint64 prefix arrays of the width the
training set actually has — so prefix-mode (width-16, §5.6) campaigns
report correct counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Set

import numpy as np

from repro.core.pipeline import EntropyIP
from repro.ipv6.sets import AddressSet
from repro.scan.responder import SimulatedResponder


@dataclass(frozen=True)
class CampaignRound:
    """Bookkeeping for one probing round."""

    index: int
    probes_sent: int
    hits: int
    cumulative_probes: int
    cumulative_hits: int
    new_prefixes64: int

    @property
    def hit_rate(self) -> float:
        """Hits per probe within this round."""
        return self.hits / self.probes_sent if self.probes_sent else 0.0


@dataclass(frozen=True)
class CampaignResult:
    """Outcome of a whole campaign."""

    rounds: Sequence[CampaignRound]
    discovered: Sequence[int]
    discovered_prefixes64: Set[int]

    @property
    def total_probes(self) -> int:
        return self.rounds[-1].cumulative_probes if self.rounds else 0

    @property
    def total_hits(self) -> int:
        return self.rounds[-1].cumulative_hits if self.rounds else 0

    def discovery_curve(self) -> List[int]:
        """Cumulative hits after each round (the survey's yield curve)."""
        return [r.cumulative_hits for r in self.rounds]


class ScanCampaign:
    """Round-based prober over a fitted model and a responder oracle."""

    def __init__(
        self,
        training: AddressSet,
        responder: SimulatedResponder,
        probe_budget: int = 50_000,
        round_size: int = 10_000,
        adaptive: bool = False,
        seed: int = 0,
        workers: "int | None" = None,
    ):
        if probe_budget < 1 or round_size < 1:
            raise ValueError("budget and round size must be positive")
        self._training = training
        self._responder = responder
        self._budget = probe_budget
        self._round_size = round_size
        self._adaptive = adaptive
        self._rng = np.random.default_rng(seed)
        # workers=N routes generation and scoring through the sharded
        # engine (repro.exec); campaign outcomes are bit-identical for
        # any N because the shard decomposition is worker-independent.
        self._workers = workers

    def run(self) -> CampaignResult:
        """Probe until the budget is exhausted; return the full record."""
        train = self._training
        analysis = EntropyIP.fit(train, width=train.width)
        # Everything ever probed (training counts as probed), kept as a
        # running packed-word matrix fed straight into generate_set's
        # whole-row exclusion: no Python set is ever materialized and
        # nothing is re-packed, however many rounds run.
        probed_words = train.packed_rows()
        train_64s = train.prefixes64()
        discovered = AddressSet.empty(train.width)
        new_64s = np.empty(0, dtype=np.uint64)

        rounds: List[CampaignRound] = []
        spent = 0
        index = 0
        while spent < self._budget:
            want = min(self._round_size, self._budget - spent)
            candidates = analysis.model.generate_set(
                want, self._rng, exclude=probed_words, workers=self._workers
            )
            if len(candidates) == 0:
                break  # model support exhausted
            probed_words = np.vstack([probed_words, candidates.packed_rows()])
            # oracle_masks runs inline when workers is None and matches
            # ping_mask bit for bit, so one call site serves any worker
            # count.
            _, hit_mask, _ = self._responder.oracle_masks(
                candidates, workers=self._workers
            )
            hits = candidates.take(np.flatnonzero(hit_mask))
            spent += len(candidates)
            discovered = discovered.concat(hits)
            new_64s = np.setdiff1d(
                discovered.prefixes64(), train_64s, assume_unique=True
            )
            index += 1
            rounds.append(
                CampaignRound(
                    index=index,
                    probes_sent=len(candidates),
                    hits=len(hits),
                    cumulative_probes=spent,
                    cumulative_hits=len(discovered),
                    new_prefixes64=len(new_64s),
                )
            )
            short_round = len(candidates) < want
            if short_round and not (self._adaptive and len(hits)):
                # The model could not fill the round even after its own
                # oversampling retries: its support is exhausted.  The
                # partial round is already charged to ``spent`` and
                # recorded above; asking again would re-run the same
                # saturated generation loop for zero (or a trickle of)
                # new candidates per round, so terminate.  An *adaptive*
                # round with hits continues instead — folding the hits
                # back in refits the model and can expand its support.
                break
            if self._adaptive and len(hits):
                # Fold confirmed addresses back in and refit — the
                # bootstrap loop.  Known-but-probed addresses stay
                # excluded from future candidate batches via
                # ``probed_words``.
                train = train.concat(hits)
                analysis = EntropyIP.fit(train, width=train.width)
        return CampaignResult(
            rounds=tuple(rounds),
            discovered=tuple(discovered.to_ints()),
            discovered_prefixes64=set(map(int, new_64s)),
        )


def run_campaign(
    training: AddressSet,
    responder: SimulatedResponder,
    probe_budget: int = 50_000,
    round_size: int = 10_000,
    adaptive: bool = False,
    seed: int = 0,
    workers: "int | None" = None,
) -> CampaignResult:
    """Functional one-shot interface to :class:`ScanCampaign`."""
    return ScanCampaign(
        training,
        responder,
        probe_budget=probe_budget,
        round_size=round_size,
        adaptive=adaptive,
        seed=seed,
        workers=workers,
    ).run()
