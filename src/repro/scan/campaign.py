"""Budgeted scanning campaigns: the operational side of §5.5.

The paper's evaluation scores a fixed 1M-candidate batch.  A real
survey (zmap-style, [8]) runs under a *probe budget* and wants hits as
early as possible.  :class:`ScanCampaign` drives a fitted Entropy/IP
model against a responder in rounds, records the progressive discovery
curve, and optionally *adapts*: addresses confirmed in earlier rounds
are folded back into the training set and the model is refitted — the
bootstrap loop the paper sketches ("use them to bootstrap active
address discovery").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set

import numpy as np

from repro.core.pipeline import EntropyIP
from repro.ipv6.sets import AddressSet
from repro.scan.generator import prefixes64
from repro.scan.responder import SimulatedResponder


@dataclass(frozen=True)
class CampaignRound:
    """Bookkeeping for one probing round."""

    index: int
    probes_sent: int
    hits: int
    cumulative_probes: int
    cumulative_hits: int
    new_prefixes64: int

    @property
    def hit_rate(self) -> float:
        """Hits per probe within this round."""
        return self.hits / self.probes_sent if self.probes_sent else 0.0


@dataclass(frozen=True)
class CampaignResult:
    """Outcome of a whole campaign."""

    rounds: Sequence[CampaignRound]
    discovered: Sequence[int]
    discovered_prefixes64: Set[int]

    @property
    def total_probes(self) -> int:
        return self.rounds[-1].cumulative_probes if self.rounds else 0

    @property
    def total_hits(self) -> int:
        return self.rounds[-1].cumulative_hits if self.rounds else 0

    def discovery_curve(self) -> List[int]:
        """Cumulative hits after each round (the survey's yield curve)."""
        return [r.cumulative_hits for r in self.rounds]


class ScanCampaign:
    """Round-based prober over a fitted model and a responder oracle."""

    def __init__(
        self,
        training: AddressSet,
        responder: SimulatedResponder,
        probe_budget: int = 50_000,
        round_size: int = 10_000,
        adaptive: bool = False,
        seed: int = 0,
    ):
        if probe_budget < 1 or round_size < 1:
            raise ValueError("budget and round size must be positive")
        self._training = training
        self._responder = responder
        self._budget = probe_budget
        self._round_size = round_size
        self._adaptive = adaptive
        self._rng = np.random.default_rng(seed)

    def run(self) -> CampaignResult:
        """Probe until the budget is exhausted; return the full record."""
        train = self._training
        analysis = EntropyIP.fit(train)
        known: Set[int] = set(train.to_ints())
        probed: Set[int] = set(known)
        train_64s = prefixes64(train.to_ints(), train.width)

        rounds: List[CampaignRound] = []
        discovered: List[int] = []
        discovered_64s: Set[int] = set()
        spent = 0
        index = 0
        while spent < self._budget:
            want = min(self._round_size, self._budget - spent)
            candidates = analysis.model.generate(
                want, self._rng, exclude=probed
            )
            if not candidates:
                break  # model support exhausted
            probed.update(candidates)
            hits = self._responder.ping_many(candidates)
            spent += len(candidates)
            discovered.extend(hits)
            discovered_64s = prefixes64(discovered, 32) - train_64s
            index += 1
            rounds.append(
                CampaignRound(
                    index=index,
                    probes_sent=len(candidates),
                    hits=len(hits),
                    cumulative_probes=spent,
                    cumulative_hits=len(discovered),
                    new_prefixes64=len(discovered_64s),
                )
            )
            if self._adaptive and hits:
                # Fold confirmed addresses back in and refit — the
                # bootstrap loop.  Known-but-probed addresses stay
                # excluded from future candidate batches via `probed`.
                train = train.concat(
                    AddressSet.from_ints(hits, width=train.width,
                                         already_truncated=True)
                )
                analysis = EntropyIP.fit(train)
        return CampaignResult(
            rounds=tuple(rounds),
            discovered=tuple(discovered),
            discovered_prefixes64=discovered_64s,
        )


def run_campaign(
    training: AddressSet,
    responder: SimulatedResponder,
    probe_budget: int = 50_000,
    round_size: int = 10_000,
    adaptive: bool = False,
    seed: int = 0,
) -> CampaignResult:
    """Functional one-shot interface to :class:`ScanCampaign`."""
    return ScanCampaign(
        training,
        responder,
        probe_budget=probe_budget,
        round_size=round_size,
        adaptive=adaptive,
        seed=seed,
    ).run()
