"""Budgeted scanning campaigns: the operational side of §5.5.

The paper's evaluation scores a fixed 1M-candidate batch.  A real
survey (zmap-style, [8]) runs under a *probe budget* and wants hits as
early as possible.  :class:`ScanCampaign` drives a fitted Entropy/IP
model against a responder in rounds, records the progressive discovery
curve, and optionally *adapts*: addresses confirmed in earlier rounds
are folded back into the training set and the model is refitted — the
bootstrap loop the paper sketches ("use them to bootstrap active
address discovery").

The loop is a steady-state engine: one persistent
:class:`~repro.core.model.GenerationSession` owns the probed universe
(training counts as probed) for the whole campaign, so each round's
generation excludes everything ever probed without anyone re-feeding —
or re-indexing — the history; the session survives adaptive refits
unchanged (only the BN is relearned, not the probed universe).
Campaign accounting is incremental too: the "new /64s" counter folds
each round's hit prefixes into a running sorted-unique uint64 array
(:func:`~repro.ipv6.sets.merge_sorted_unique`) instead of recomputing
``prefixes64()`` + ``setdiff1d`` over the full discovered set, and hit
rows accumulate as per-round chunks concatenated once at the end.  Per
round cost is therefore ~flat in the campaign's age.  The pre-session
re-seeding loop is retained verbatim as
:meth:`ScanCampaign._run_reseed_reference` — the perf harness times
:meth:`run` against it, and the test suite pins their outcomes equal
round for round.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Sequence, Set

import numpy as np

from repro.core.pipeline import EntropyIP
from repro.ipv6.sets import AddressSet, in_sorted, merge_sorted_unique
from repro.scan.responder import SimulatedResponder
from repro.serve.lifecycle import SessionSpec


@dataclass(frozen=True)
class CampaignRound:
    """Bookkeeping for one probing round."""

    index: int
    probes_sent: int
    hits: int
    cumulative_probes: int
    cumulative_hits: int
    new_prefixes64: int
    #: Wall-clock seconds this round took (generation + scoring +
    #: accounting) — what the steady-state benchmark gates on.
    seconds: float = 0.0

    @property
    def hit_rate(self) -> float:
        """Hits per probe within this round."""
        return self.hits / self.probes_sent if self.probes_sent else 0.0


@dataclass(frozen=True)
class CampaignResult:
    """Outcome of a whole campaign."""

    rounds: Sequence[CampaignRound]
    discovered: Sequence[int]
    discovered_prefixes64: Set[int]

    @property
    def total_probes(self) -> int:
        return self.rounds[-1].cumulative_probes if self.rounds else 0

    @property
    def total_hits(self) -> int:
        return self.rounds[-1].cumulative_hits if self.rounds else 0

    def discovery_curve(self) -> List[int]:
        """Cumulative hits after each round (the survey's yield curve)."""
        return [r.cumulative_hits for r in self.rounds]


class ScanCampaign:
    """Round-based prober over a fitted model and a responder oracle."""

    def __init__(
        self,
        training: AddressSet,
        responder: SimulatedResponder,
        probe_budget: int = 50_000,
        round_size: int = 10_000,
        adaptive: bool = False,
        seed: int = 0,
        workers: "int | None" = None,
        backend=None,
        exec_backend: "str | None" = None,
    ):
        if probe_budget < 1 or round_size < 1:
            raise ValueError("budget and round size must be positive")
        self._training = training
        self._responder = responder
        self._budget = probe_budget
        self._round_size = round_size
        self._adaptive = adaptive
        self._rng = np.random.default_rng(seed)
        # workers=N routes generation and scoring through the sharded
        # engine (repro.exec); campaign outcomes are bit-identical for
        # any N because the shard decomposition is worker-independent.
        self._workers = workers
        # backend= picks the session's exclusion-store layout (see
        # repro.ipv6.backends): "memory" (default) or "sharded64" for
        # campaigns whose probed universe outgrows one flat table.
        # Emitted candidates are identical for every backend.
        self._backend = backend
        # exec_backend= picks where sharded draws execute ("thread"
        # default, "process" for multi-core scaling); like workers it
        # is a pure throughput knob — outcomes are bit-identical.
        self._exec_backend = exec_backend

    def run(self) -> CampaignResult:
        """Probe until the budget is exhausted; return the full record.

        Steady-state: one :class:`~repro.core.model.GenerationSession`
        is seeded with the training set and reused by every round (and
        every adaptive refit), so no round re-reads the probed history;
        hit-row and /64-prefix accounting are likewise incremental.
        Outcomes are bit-identical to the retained re-seeding reference
        (:meth:`_run_reseed_reference`) for any seed and worker count.
        """
        train = self._training
        analysis = EntropyIP.fit(train, width=train.width)
        # The probed universe for the whole campaign (training counts
        # as probed): each round's generated rows stay in the session,
        # so the next round can never probe them again.  Opened through
        # the canonical SessionSpec recipe (shared with the serving
        # runtime), capped at the probe budget — the cap both pre-sizes
        # the table (steady-state rounds almost never rehash) and
        # enforces that the campaign can never outgrow its budget.
        session = SessionSpec(
            exclude=train,
            capacity=len(train) + self._budget,
            backend=self._backend,
            workers=self._workers,
            exec_backend=self._exec_backend,
        ).open(analysis.model)
        train_64s = train.prefixes64()
        hit_chunks: List[np.ndarray] = []
        hit_count = 0
        # Sorted-unique /64 prefixes discovered outside training, grown
        # by a searchsorted merge of each round's (distinct) hit
        # prefixes — never recomputed over the full discovered set.
        new_64s = np.empty(0, dtype=np.uint64)

        rounds: List[CampaignRound] = []
        spent = 0
        index = 0
        try:
            while spent < self._budget:
                round_started = time.perf_counter()
                want = min(self._round_size, self._budget - spent)
                candidates = analysis.model.generate_set(
                    want,
                    self._rng,
                    state=session,
                    workers=self._workers,
                    exec_backend=self._exec_backend,
                )
                if len(candidates) == 0:
                    break  # model support exhausted
                # oracle_masks runs inline when workers is None and
                # matches ping_mask bit for bit, so one call site serves
                # any worker count.
                _, hit_mask, _ = self._responder.oracle_masks(
                    candidates, workers=self._workers
                )
                hits = candidates.take(np.flatnonzero(hit_mask))
                spent += len(candidates)
                hit_count += len(hits)
                if len(hits):
                    hit_chunks.append(hits.matrix)
                    hits_64 = hits.prefixes64()
                    fresh_64 = hits_64[
                        ~in_sorted(new_64s, hits_64)
                        & ~in_sorted(train_64s, hits_64)
                    ]
                    new_64s = merge_sorted_unique(new_64s, fresh_64)
                index += 1
                rounds.append(
                    CampaignRound(
                        index=index,
                        probes_sent=len(candidates),
                        hits=len(hits),
                        cumulative_probes=spent,
                        cumulative_hits=hit_count,
                        new_prefixes64=len(new_64s),
                        seconds=time.perf_counter() - round_started,
                    )
                )
                short_round = len(candidates) < want
                if short_round and not (self._adaptive and len(hits)):
                    # The model could not fill the round even after its
                    # own oversampling retries: its support is
                    # exhausted.  The partial round is already charged
                    # to ``spent`` and recorded above; asking again
                    # would re-run the same saturated generation loop
                    # for zero (or a trickle of) new candidates per
                    # round, so terminate.  An *adaptive* round with
                    # hits continues instead — folding the hits back in
                    # refits the model and can expand its support.
                    break
                if self._adaptive and len(hits):
                    # Fold confirmed addresses back in and refit — the
                    # bootstrap loop.  The session survives the refit
                    # untouched: only the BN changed, not the probed
                    # universe, and the hits it would re-exclude are
                    # already in the table as generated rows.
                    train = train.concat(hits)
                    analysis = EntropyIP.fit(train, width=train.width)
        finally:
            # Release the session's long-lived worker pools — a
            # campaign must not leave executor threads/processes alive.
            session.close()
        if hit_chunks:
            discovered = AddressSet(np.vstack(hit_chunks))
        else:
            discovered = AddressSet.empty(train.width)
        return CampaignResult(
            rounds=tuple(rounds),
            discovered=tuple(discovered.to_ints()),
            discovered_prefixes64=set(map(int, new_64s)),
        )

    def _run_reseed_reference(self) -> CampaignResult:
        """The retained pre-session campaign loop.

        Re-pays the history every round: the probed set grows by
        ``np.vstack`` and is re-fed (and re-indexed) through
        ``generate_set``'s per-call exclusion, and the "new /64s"
        accounting recomputes ``prefixes64()`` + ``setdiff1d`` over the
        full discovered set.  Kept so the perf harness can measure the
        steady-state engine against it on identical campaigns, and as
        the regression oracle: :meth:`run` must match it round for
        round (asserted in tests/scan/test_campaign.py).
        """
        train = self._training
        analysis = EntropyIP.fit(train, width=train.width)
        probed_words = train.packed_rows()
        train_64s = train.prefixes64()
        discovered = AddressSet.empty(train.width)
        new_64s = np.empty(0, dtype=np.uint64)

        rounds: List[CampaignRound] = []
        spent = 0
        index = 0
        while spent < self._budget:
            round_started = time.perf_counter()
            want = min(self._round_size, self._budget - spent)
            candidates = analysis.model.generate_set(
                want,
                self._rng,
                exclude=probed_words,
                workers=self._workers,
                exec_backend=self._exec_backend,
            )
            if len(candidates) == 0:
                break  # model support exhausted
            probed_words = np.vstack([probed_words, candidates.packed_rows()])
            _, hit_mask, _ = self._responder.oracle_masks(
                candidates, workers=self._workers
            )
            hits = candidates.take(np.flatnonzero(hit_mask))
            spent += len(candidates)
            discovered = discovered.concat(hits)
            new_64s = np.setdiff1d(
                discovered.prefixes64(), train_64s, assume_unique=True
            )
            index += 1
            rounds.append(
                CampaignRound(
                    index=index,
                    probes_sent=len(candidates),
                    hits=len(hits),
                    cumulative_probes=spent,
                    cumulative_hits=len(discovered),
                    new_prefixes64=len(new_64s),
                    seconds=time.perf_counter() - round_started,
                )
            )
            short_round = len(candidates) < want
            if short_round and not (self._adaptive and len(hits)):
                break
            if self._adaptive and len(hits):
                train = train.concat(hits)
                analysis = EntropyIP.fit(train, width=train.width)
        return CampaignResult(
            rounds=tuple(rounds),
            discovered=tuple(discovered.to_ints()),
            discovered_prefixes64=set(map(int, new_64s)),
        )


def run_campaign(
    training: AddressSet,
    responder: SimulatedResponder,
    probe_budget: int = 50_000,
    round_size: int = 10_000,
    adaptive: bool = False,
    seed: int = 0,
    workers: "int | None" = None,
    backend=None,
    exec_backend: "str | None" = None,
) -> CampaignResult:
    """Functional one-shot interface to :class:`ScanCampaign`."""
    return ScanCampaign(
        training,
        responder,
        probe_budget=probe_budget,
        round_size=round_size,
        adaptive=adaptive,
        seed=seed,
        workers=workers,
        backend=backend,
        exec_backend=exec_backend,
    ).run()
