"""Scanning and prefix-prediction experiments (Tables 4, 5 and 6).

The methodology follows Section 5.5 exactly:

1. sample a training set of ``train_size`` real addresses from the
   network's observed dataset;
2. fit Entropy/IP on the training set;
3. generate ``n_candidates`` distinct candidates (training excluded);
4. score: membership in the held-out test set, simulated ping, and
   simulated rDNS; "Overall" = any of the three; success rate =
   overall / candidates; "New /64s" = overall hits in /64 prefixes not
   present in training.

Section 5.6's prefix prediction runs the same pipeline constrained to
the top 64 bits (``width=16``), scoring candidates against the /64s
active on the training day and across the whole week.

The scoring pipeline is array-native end to end: candidates stay an
:class:`~repro.ipv6.sets.AddressSet` from generation through oracle
masks (:meth:`~repro.scan.responder.SimulatedResponder.ping_mask` et
al.) to the /64 accounting, which derives the prefix width from the
training set itself — so §5.6 prefix-mode (width 16) runs compare
matching-width prefix sets rather than shifting one side by 64 bits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.pipeline import EntropyIP
from repro.datasets.networks import SyntheticNetwork
from repro.ipv6.backends import BackendSpec
from repro.ipv6.sets import AddressSet, split_train_test
from repro.scan.responder import SimulatedResponder
from repro.serve.lifecycle import SessionSpec


@dataclass(frozen=True)
class ScanResult:
    """One row of Table 4."""

    dataset: str
    train_size: int
    n_candidates: int
    found_test_set: int
    found_ping: int
    found_rdns: int
    found_overall: int
    new_prefixes64: int

    @property
    def success_rate(self) -> float:
        """Overall hits / generated candidates (the paper's "Success rate")."""
        return self.found_overall / self.n_candidates if self.n_candidates else 0.0

    def row(self) -> str:
        """Render like a Table 4 line."""
        return (
            f"{self.dataset:>4}  test={self.found_test_set:>7}  "
            f"ping={self.found_ping:>7}  rdns={self.found_rdns:>7}  "
            f"overall={self.found_overall:>7}  "
            f"success={100 * self.success_rate:5.2f}%  "
            f"new/64s={self.new_prefixes64:>6}"
        )


@dataclass(frozen=True)
class PrefixPredictionResult:
    """One row of Table 6."""

    dataset: str
    train_size: int
    n_candidates: int
    predicted_day: int
    predicted_week: int

    @property
    def success_rate_week(self) -> float:
        """7-day success rate (the paper's rightmost column)."""
        return self.predicted_week / self.n_candidates if self.n_candidates else 0.0

    def row(self) -> str:
        """Render like a Table 6 line."""
        return (
            f"{self.dataset:>4}  day={self.predicted_day:>7}  "
            f"week={self.predicted_week:>7}  "
            f"success={100 * self.success_rate_week:5.2f}%"
        )


def scan_experiment(
    network: SyntheticNetwork,
    train_size: int = 1000,
    n_candidates: int = 100_000,
    dataset_size: Optional[int] = None,
    seed: int = 0,
    workers: Optional[int] = None,
    backend: BackendSpec = None,
    exec_backend: Optional[str] = None,
) -> ScanResult:
    """Run the full §5.5 scanning experiment against one network.

    ``dataset_size`` bounds the observed dataset sampled from the
    population (defaults to half the population, leaving the rest as
    never-observed-but-active addresses the ping oracle can confirm).

    ``workers`` runs generation and oracle scoring across a worker
    pool (see :mod:`repro.exec`); results are bit-identical for any
    worker count, including the serial default.  ``exec_backend``
    picks where the shards run (``"thread"`` default, ``"process"``
    for multi-core scaling) — also output-neutral.  ``backend`` picks
    the exclusion-store layout (``"memory"``/``"sharded64"``) — output
    is identical for every backend.
    """
    population = network.population(seed)
    responder = SimulatedResponder(
        population,
        ping_rate=network.ping_rate,
        rdns_rate=network.rdns_rate,
        seed=seed,
    )
    rng = np.random.default_rng(seed + 17)
    if dataset_size is None:
        dataset_size = max(train_size * 2, len(population) // 2)
    dataset = population.sample(min(dataset_size, len(population)), rng)
    train, test = split_train_test(dataset, train_size, rng)

    analysis = EntropyIP.fit(train, width=train.width)
    # A generation session (training pre-excluded) rather than a bare
    # exclude: same rows bit for bit, and callers that extend the
    # experiment into follow-up rounds inherit the no-repeat guarantee
    # for free.  Opened through the one canonical SessionSpec recipe
    # (shared with the serving runtime and the CLI), capped at the full
    # candidate count so the table never rehashes mid-experiment — the
    # capacity the old per-call exclude path implied, now enforced.
    session = SessionSpec(
        exclude=train,
        capacity=n_candidates + len(train),
        backend=backend,
        workers=workers,
        exec_backend=exec_backend,
    ).open(analysis.model)
    try:
        candidates = analysis.model.generate_set(
            n_candidates,
            rng,
            state=session,
            workers=workers,
            exec_backend=exec_backend,
        )
    finally:
        session.close()

    # One scoring path for any worker count: sharded_map_rows and
    # oracle_masks both run inline when workers is None, and their
    # outputs are pinned equal to the per-mask calls by the exec tests.
    from repro.exec import sharded_map_rows

    packed = candidates.packed_rows()
    if len(test):
        test._membership_index()  # build serially, probe in shards
    test_mask = sharded_map_rows(
        lambda a, b: test.match_words(packed[a:b]) >= 0,
        len(candidates),
        workers=workers,
    )
    _, ping_mask, rdns_mask = responder.oracle_masks(
        candidates, workers=workers
    )
    overall_mask = test_mask | ping_mask | rdns_mask
    overall = candidates.take(np.flatnonzero(overall_mask))

    # "New /64s": overall hits in prefixes unseen in training.  Both
    # prefix sets derive from the same nybble width (train.width), so
    # prefix-mode (width 16) runs subtract like against like.
    new_64s = np.setdiff1d(
        overall.prefixes64(), train.prefixes64(), assume_unique=True
    )

    return ScanResult(
        dataset=network.name,
        train_size=train_size,
        n_candidates=len(candidates),
        found_test_set=int(test_mask.sum()),
        found_ping=int(ping_mask.sum()),
        found_rdns=int(rdns_mask.sum()),
        found_overall=len(overall),
        new_prefixes64=len(new_64s),
    )


def prefix_prediction_experiment(
    network: SyntheticNetwork,
    train_size: int = 1000,
    n_candidates: int = 100_000,
    day_fraction: float = 0.45,
    seed: int = 0,
    workers: Optional[int] = None,
    backend: BackendSpec = None,
) -> PrefixPredictionResult:
    """Run the §5.6 client /64 prediction experiment.

    The population's /64 set plays the role of the prefixes active at
    least once in the week; a random ``day_fraction`` of them is "seen
    on March 17th".  Training samples 1K day-1 prefixes; candidates are
    scored against the day-1 set and the full week set.  Scoring is
    pure uint64 array membership (the /64 identifier of a width-16 row
    is the row itself).

    ``workers``/``backend`` have the same spelling and semantics as
    every other session-opening entry point (results are bit-identical
    for any worker count and for every backend).
    """
    population = network.population(seed)
    week_prefixes = population.prefixes64()  # sorted distinct uint64
    rng = np.random.default_rng(seed + 29)
    day_count = max(train_size + 1, int(len(week_prefixes) * day_fraction))
    day_count = min(day_count, len(week_prefixes))
    day_rows = rng.choice(len(week_prefixes), size=day_count, replace=False)
    day_prefixes = week_prefixes[day_rows]

    train_rows = rng.choice(len(day_prefixes), size=train_size, replace=False)
    train = AddressSet.from_words(day_prefixes[train_rows], width=16)

    analysis = EntropyIP.fit(train, width=16)
    # Same canonical session recipe as the full-width experiment
    # (session-backed generation is bit-identical to the bare
    # exclude= call); uncapped because prefix-mode support is often
    # smaller than the ask and saturates early.
    session = SessionSpec(
        exclude=train, backend=backend, workers=workers
    ).open(analysis.model)
    try:
        candidates = analysis.model.generate_set(
            n_candidates, rng, state=session, workers=workers
        )
    finally:
        session.close()

    candidate_words = candidates.prefixes64()  # distinct width-16 rows
    predicted_day = int(np.isin(candidate_words, day_prefixes).sum())
    predicted_week = int(np.isin(candidate_words, week_prefixes).sum())

    return PrefixPredictionResult(
        dataset=network.name,
        train_size=train_size,
        n_candidates=len(candidates),
        predicted_day=predicted_day,
        predicted_week=predicted_week,
    )


def training_size_sweep(
    network: SyntheticNetwork,
    train_sizes: Sequence[int] = (100, 1000, 10_000),
    n_candidates: int = 50_000,
    prefix_mode: bool = False,
    seed: int = 0,
    workers: Optional[int] = None,
    backend: BackendSpec = None,
) -> Dict[int, float]:
    """Success rate vs training size (Table 5).

    Returns train_size → success rate.  Sizes larger than the available
    dataset are skipped.  ``workers``/``backend`` forward to the
    underlying experiments with the unified spelling (results are
    bit-identical either way).
    """
    results: Dict[int, float] = {}
    for train_size in train_sizes:
        if prefix_mode:
            population = network.population(seed)
            available = len(population.prefixes64())
        else:
            available = len(network.population(seed))
        if train_size * 2 >= available:
            continue
        if prefix_mode:
            result = prefix_prediction_experiment(
                network,
                train_size=train_size,
                n_candidates=n_candidates,
                seed=seed,
                workers=workers,
                backend=backend,
            )
            results[train_size] = result.success_rate_week
        else:
            scan = scan_experiment(
                network,
                train_size=train_size,
                n_candidates=n_candidates,
                seed=seed,
                workers=workers,
                backend=backend,
            )
            results[train_size] = scan.success_rate
    return results
