"""Reverse-DNS tree walking (RFC 7707 §2.2, the paper's "rDNS" source).

One of the paper's data sources (Table 1, column "rDNS") is the
technique of Gont & Chown: walk the ``ip6.arpa`` reverse-DNS tree,
using the fact that a correct name server answers NXDOMAIN for an
empty branch but NOERROR for an existing one, to enumerate a network's
addresses nybble by nybble without scanning.

Offline we simulate the authoritative zone from a synthetic network's
population (only a fraction of addresses have PTR records, as in the
wild) and implement the walker against it.  The walker's query count
demonstrates why the technique works: it is proportional to the number
of *populated branches*, not to the 2^124 possible names.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set, Tuple, Union

from repro.ipv6.address import IPv6Address, NYBBLES_PER_ADDRESS
from repro.ipv6.prefix import Prefix
from repro.ipv6.sets import AddressSet
from repro.scan.responder import _keyed_uniform, _splitmix64


class SimulatedRdnsZone:
    """An ip6.arpa-style zone over a population's PTR records.

    Answers the only question the walker needs: "does any PTR record
    exist under this nybble-aligned prefix?"  ``coverage`` controls the
    fraction of population addresses that have PTR records, decided by
    a keyed hash (deterministic per address).
    """

    def __init__(
        self,
        population: AddressSet,
        coverage: float = 0.5,
        seed: int = 0,
    ):
        if not 0 <= coverage <= 1:
            raise ValueError("coverage must lie in [0, 1]")
        if population.width != NYBBLES_PER_ADDRESS:
            raise ValueError("rDNS zones need full-width addresses")
        key = _splitmix64(seed ^ 0x7D5)
        self._records: Set[int] = {
            value
            for value in population.to_ints()
            if _keyed_uniform(value, key) < coverage
        }
        # Precompute all populated nybble-aligned branches for O(1)
        # existence answers (the real DNS server's zone tree).
        self._branches: Set[Tuple[int, int]] = set()
        for value in self._records:
            for nybbles in range(NYBBLES_PER_ADDRESS + 1):
                shift = 4 * (NYBBLES_PER_ADDRESS - nybbles)
                self._branches.add((nybbles, value >> shift))
        self.queries = 0

    @property
    def record_count(self) -> int:
        """Number of PTR records in the zone."""
        return len(self._records)

    def branch_exists(self, nybbles: int, branch_value: int) -> bool:
        """One simulated DNS query: does this branch have any records?"""
        self.queries += 1
        return (nybbles, branch_value) in self._branches

    def has_record(self, address: Union[IPv6Address, int]) -> bool:
        """Terminal PTR lookup."""
        self.queries += 1
        return int(address) in self._records


@dataclass(frozen=True)
class RdnsWalkResult:
    """Outcome of a tree walk."""

    addresses: Tuple[int, ...]
    queries: int
    truncated: bool

    def address_objects(self) -> List[IPv6Address]:
        return [IPv6Address(v) for v in self.addresses]


def walk_rdns_tree(
    zone: SimulatedRdnsZone,
    root: Prefix,
    max_queries: int = 1_000_000,
) -> RdnsWalkResult:
    """Enumerate all PTR-holding addresses under ``root``.

    Classic RFC 7707 walk: depth-first over nybbles, pruning branches
    the zone reports empty.  ``max_queries`` bounds the walk (real
    surveys budget their query volume); the result notes truncation.
    """
    if root.length % 4 != 0:
        raise ValueError("the walk starts at a nybble-aligned prefix")
    start_nybbles = root.length // 4
    start_value = root.network.value >> (4 * (NYBBLES_PER_ADDRESS - start_nybbles))

    found: List[int] = []
    truncated = False
    start_queries = zone.queries
    stack: List[Tuple[int, int]] = [(start_nybbles, start_value)]
    while stack:
        if zone.queries - start_queries >= max_queries:
            truncated = True
            break
        nybbles, value = stack.pop()
        if not zone.branch_exists(nybbles, value):
            continue
        if nybbles == NYBBLES_PER_ADDRESS:
            found.append(value)
            continue
        # Push children in reverse so the walk visits 0..f in order.
        for nybble in range(15, -1, -1):
            stack.append((nybbles + 1, (value << 4) | nybble))
    return RdnsWalkResult(
        addresses=tuple(sorted(found)),
        queries=zone.queries - start_queries,
        truncated=truncated,
    )


def rdns_harvest(
    population: AddressSet,
    root: Prefix,
    coverage: float = 0.5,
    seed: int = 0,
    max_queries: int = 1_000_000,
) -> RdnsWalkResult:
    """Convenience: build the zone and walk it in one call."""
    zone = SimulatedRdnsZone(population, coverage=coverage, seed=seed)
    return walk_rdns_tree(zone, root, max_queries=max_queries)
