"""The simulated network oracle standing in for live scanning.

The paper validated generated candidates by (a) membership in the
held-out test set, (b) ICMPv6 echo ("Ping"), and (c) reverse DNS
("rDNS").  Offline we replace (b) and (c) with a deterministic oracle
over the synthetic network's *population* — the full set of deployed
addresses, of which any observed dataset is only a sample.  Each
population member answers pings with probability ``ping_rate`` and has
an rDNS record with probability ``rdns_rate``, decided by a keyed hash
so the same address always behaves the same way.

The paper also notes a validation caveat: "part of the positive
responses ... might have been generated automatically (e.g. replying to
any ping request destined to a certain prefix, causing false
positives)."  ``wildcard_ping_prefixes`` models exactly that failure
mode for robustness testing.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Set

import numpy as np

from repro.ipv6.prefix import Prefix
from repro.ipv6.sets import AddressSet


def _splitmix64(value: int) -> int:
    """SplitMix64 finalizer: a fast, well-mixed 64-bit hash."""
    value = (value + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return value ^ (value >> 31)


def _keyed_uniform(value: int, key: int) -> float:
    """Deterministic pseudo-uniform in [0, 1) keyed by (value, key)."""
    mixed = _splitmix64((value & 0xFFFFFFFFFFFFFFFF) ^ _splitmix64(value >> 64) ^ key)
    return mixed / 2.0**64


def _splitmix64_array(values: np.ndarray) -> np.ndarray:
    """Vectorized SplitMix64 over a uint64 array (wrapping arithmetic)."""
    values = values + np.uint64(0x9E3779B97F4A7C15)
    values = (values ^ (values >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    values = (values ^ (values >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return values ^ (values >> np.uint64(31))


def _keyed_uniform_array(
    low_words: np.ndarray, high_words: np.ndarray, key: int
) -> np.ndarray:
    """Vectorized :func:`_keyed_uniform`, bit-identical to the scalar."""
    mixed = _splitmix64_array(
        low_words ^ _splitmix64_array(high_words) ^ np.uint64(key)
    )
    return mixed.astype(np.float64) / 2.0**64


class SimulatedResponder:
    """Deterministic ping/rDNS oracle over a ground-truth population."""

    def __init__(
        self,
        population: AddressSet,
        ping_rate: float = 0.8,
        rdns_rate: float = 0.3,
        seed: int = 0,
        wildcard_ping_prefixes: Sequence[Prefix] = (),
    ):
        if not 0 <= ping_rate <= 1 or not 0 <= rdns_rate <= 1:
            raise ValueError("rates must lie in [0, 1]")
        self._members: Set[int] = set(population.to_ints())
        self._width = population.width
        self._ping_rate = ping_rate
        self._rdns_rate = rdns_rate
        self._ping_key = _splitmix64(seed * 2 + 1)
        self._rdns_key = _splitmix64(seed * 2 + 2)
        self._wildcards = list(wildcard_ping_prefixes)

    @property
    def population_size(self) -> int:
        return len(self._members)

    def is_member(self, value: int) -> bool:
        """True if the address belongs to the deployed population."""
        return value in self._members

    def ping(self, value: int) -> bool:
        """Simulated ICMPv6 echo: member + responder, or wildcard hit."""
        if value in self._members:
            return _keyed_uniform(value, self._ping_key) < self._ping_rate
        if self._wildcards:
            shift = 4 * (32 - self._width)
            padded = value << shift
            return any(p.contains(padded) for p in self._wildcards)
        return False

    def rdns(self, value: int) -> bool:
        """Simulated reverse-DNS lookup (dynamic records excluded)."""
        return (
            value in self._members
            and _keyed_uniform(value, self._rdns_key) < self._rdns_rate
        )

    # ------------------------------------------------------------------
    # batch interfaces
    # ------------------------------------------------------------------

    def ping_many(self, values: Iterable[int]) -> List[int]:
        """The subset of ``values`` answering pings.

        Vectorized: membership is one C-level set scan and the keyed
        hash runs as numpy uint64 array ops, bit-identical to
        :meth:`ping` — a 1M-candidate probe takes fractions of a second
        instead of minutes.
        """
        values = list(values)
        if self._wildcards:
            # Wildcard prefixes need per-value prefix checks; stay on
            # the scalar path (rare, robustness-testing only).
            return [v for v in values if self.ping(v)]
        return self._oracle_many(values, self._ping_key, self._ping_rate)

    def rdns_many(self, values: Iterable[int]) -> List[int]:
        """The subset of ``values`` with rDNS records."""
        return self._oracle_many(list(values), self._rdns_key, self._rdns_rate)

    def _oracle_many(
        self, values: List[int], key: int, rate: float
    ) -> List[int]:
        """Population members whose keyed uniform falls under ``rate``."""
        if not values:
            return []
        member_mask = np.fromiter(
            (v in self._members for v in values),
            dtype=bool,
            count=len(values),
        )
        members = [values[i] for i in np.flatnonzero(member_mask)]
        if not members:
            return []
        low_words = np.fromiter(
            (v & 0xFFFFFFFFFFFFFFFF for v in members),
            dtype=np.uint64,
            count=len(members),
        )
        high_words = np.fromiter(
            (v >> 64 for v in members), dtype=np.uint64, count=len(members)
        )
        responding = _keyed_uniform_array(low_words, high_words, key) < rate
        return [v for v, hit in zip(members, responding) if hit]

    def responding_population(self) -> List[int]:
        """All population members that would answer a ping."""
        return [v for v in sorted(self._members) if self.ping(v)]
