"""The simulated network oracle standing in for live scanning.

The paper validated generated candidates by (a) membership in the
held-out test set, (b) ICMPv6 echo ("Ping"), and (c) reverse DNS
("rDNS").  Offline we replace (b) and (c) with a deterministic oracle
over the synthetic network's *population* — the full set of deployed
addresses, of which any observed dataset is only a sample.  Each
population member answers pings with probability ``ping_rate`` and has
an rDNS record with probability ``rdns_rate``, decided by a keyed hash
so the same address always behaves the same way.

The oracle is array-native: the population lives as an
:class:`~repro.ipv6.sets.AddressSet` whose bucket-table membership
index answers batch probes in ~1-2 gathers per row, and the keyed hash
runs as numpy uint64 ops — :meth:`SimulatedResponder.member_mask`,
:meth:`~SimulatedResponder.ping_mask` and
:meth:`~SimulatedResponder.rdns_mask` score a 1M-candidate batch
without materializing a single Python integer, and
:meth:`~SimulatedResponder.oracle_masks` produces all three verdicts
from one membership pass, optionally sharded across a worker pool.
The scalar
:meth:`~SimulatedResponder.ping`/:meth:`~SimulatedResponder.rdns` and
the list-based ``*_many`` interfaces remain as thin wrappers (and as
the references the equivalence tests pin the vectorized paths to).

The paper also notes a validation caveat: "part of the positive
responses ... might have been generated automatically (e.g. replying to
any ping request destined to a certain prefix, causing false
positives)."  ``wildcard_ping_prefixes`` models exactly that failure
mode for robustness testing: population members are still scored by the
vectorized oracle, and only the (typically few) non-members fall back
to a per-value prefix check.
"""

from __future__ import annotations

import weakref
from typing import Iterable, List, Optional, Sequence, Set

import numpy as np

from repro.ipv6.prefix import Prefix
from repro.ipv6.sets import AddressSet, _mix64

#: The vectorized SplitMix64 finalizer (shared with the membership
#: index in :mod:`repro.ipv6.sets`, so the constants cannot diverge).
_splitmix64_array = _mix64


def _splitmix64(value: int) -> int:
    """SplitMix64 finalizer: a fast, well-mixed 64-bit hash."""
    value = (value + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return value ^ (value >> 31)


def _keyed_uniform(value: int, key: int) -> float:
    """Deterministic pseudo-uniform in [0, 1) keyed by (value, key)."""
    mixed = _splitmix64((value & 0xFFFFFFFFFFFFFFFF) ^ _splitmix64(value >> 64) ^ key)
    return mixed / 2.0**64


def _keyed_uniform_array(
    low_words: np.ndarray, high_words: np.ndarray, key: int
) -> np.ndarray:
    """Vectorized :func:`_keyed_uniform`, bit-identical to the scalar."""
    mixed = _splitmix64_array(
        low_words ^ _splitmix64_array(high_words) ^ np.uint64(key)
    )
    return mixed.astype(np.float64) / 2.0**64


class SimulatedResponder:
    """Deterministic ping/rDNS oracle over a ground-truth population."""

    def __init__(
        self,
        population: AddressSet,
        ping_rate: float = 0.8,
        rdns_rate: float = 0.3,
        seed: int = 0,
        wildcard_ping_prefixes: Sequence[Prefix] = (),
    ):
        if not 0 <= ping_rate <= 1 or not 0 <= rdns_rate <= 1:
            raise ValueError("rates must lie in [0, 1]")
        # Distinct rows only: np.unique sorts bytewise, which for the
        # big-endian nybble layout is ascending numeric order.
        self._population = population.unique()
        self._width = population.width
        self._ping_rate = ping_rate
        self._rdns_rate = rdns_rate
        self._ping_key = _splitmix64(seed * 2 + 1)
        self._rdns_key = _splitmix64(seed * 2 + 2)
        self._wildcards = list(wildcard_ping_prefixes)
        # Python-int membership set, built lazily: only the scalar
        # ping()/rdns()/is_member() paths need it.
        self._member_ints: Optional[Set[int]] = None
        # Per-population-row oracle verdicts, computed lazily (one
        # vectorized keyed-hash pass each): batch scoring then reduces
        # to match positions + one gather per oracle.
        self._ping_verdicts: Optional[np.ndarray] = None
        self._rdns_verdicts: Optional[np.ndarray] = None
        # Match positions of the most recent candidate batch, keyed by
        # a weak reference to it: scan_experiment scores the same
        # 1M-row batch with ping + rdns (+ membership), and the match
        # pass dominates — but a dropped batch must not stay pinned in
        # memory just because the responder outlives it.
        self._last_match: "Optional[tuple[weakref.ref, np.ndarray]]" = None

    @property
    def population_size(self) -> int:
        return len(self._population)

    @property
    def width(self) -> int:
        """Nybble width of the population (32 full / 16 prefix mode)."""
        return self._width

    def _members(self) -> Set[int]:
        if self._member_ints is None:
            self._member_ints = set(self._population.to_ints())
        return self._member_ints

    def is_member(self, value: int) -> bool:
        """True if the address belongs to the deployed population."""
        return value in self._members()

    def ping(self, value: int) -> bool:
        """Simulated ICMPv6 echo: member + responder, or wildcard hit."""
        if value in self._members():
            return _keyed_uniform(value, self._ping_key) < self._ping_rate
        return self._wildcard_hit(value)

    def rdns(self, value: int) -> bool:
        """Simulated reverse-DNS lookup (dynamic records excluded)."""
        return (
            value in self._members()
            and _keyed_uniform(value, self._rdns_key) < self._rdns_rate
        )

    def _wildcard_hit(self, value: int) -> bool:
        """Non-member wildcard check: inside any auto-replying prefix?"""
        if not self._wildcards:
            return False
        padded = value << (4 * (32 - self._width))
        return any(p.contains(padded) for p in self._wildcards)

    # ------------------------------------------------------------------
    # vectorized batch interfaces
    # ------------------------------------------------------------------

    def _match_positions(self, candidates: AddressSet) -> np.ndarray:
        """Population row matched by each candidate (-1 when absent).

        The dominant cost of batch scoring; cached by batch identity so
        scoring the same candidates with ping + rdns + membership pays
        the :meth:`~repro.ipv6.sets.AddressSet.match_rows` pass once.
        """
        if candidates.width != self._width:
            raise ValueError(
                f"candidate width {candidates.width} != "
                f"population width {self._width}"
            )
        if self._last_match is not None and self._last_match[0]() is candidates:
            return self._last_match[1]
        positions = self._population.match_rows(candidates)
        self._last_match = (weakref.ref(candidates), positions)
        return positions

    def member_mask(self, candidates: AddressSet) -> np.ndarray:
        """Boolean mask: which candidate rows belong to the population.

        One probe against the population's cached bucket-table
        membership index — O(m) with no per-candidate Python.
        """
        return self._match_positions(candidates) >= 0

    def oracle_masks(
        self,
        candidates: AddressSet,
        workers: "Optional[int]" = None,
        shards: "Optional[int]" = None,
    ) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """``(member, ping, rdns)`` masks in one membership pass.

        The batch-scoring fast path: each row is matched against the
        population once and all three verdicts are gathered from that
        single set of positions.  With ``workers`` set, the candidate
        rows are split into contiguous chunks scored across a thread
        pool (:func:`repro.exec.sharded_map_rows`); every mask is a
        pure per-row function, so any worker count produces identical
        masks.
        """
        from repro.exec import sharded_map_rows

        if candidates.width != self._width:
            raise ValueError(
                f"candidate width {candidates.width} != "
                f"population width {self._width}"
            )
        n = len(candidates)
        if n == 0:
            empty = np.zeros(0, dtype=bool)
            return empty, empty.copy(), empty.copy()
        # Materialize the shared inputs serially before any threads
        # fork: the packed rows, the population's membership index and
        # the lazy per-population verdict caches.  (Concurrent lazy
        # builds would be correct — last assignment wins and every
        # built index is complete — just wasted work.)
        packed = candidates.packed_rows()
        if len(self._population):
            self._population._membership_index()
            ping_verdicts = self._verdicts("ping")
            rdns_verdicts = self._verdicts("rdns")

        def score(start: int, stop: int) -> np.ndarray:
            out = np.zeros((stop - start, 3), dtype=bool)
            if len(self._population):
                positions = self._population.match_words(packed[start:stop])
                member = positions >= 0
                out[:, 0] = member
                out[member, 1] = ping_verdicts[positions[member]]
                out[member, 2] = rdns_verdicts[positions[member]]
            if self._wildcards:
                for i in np.flatnonzero(~out[:, 0]):
                    out[i, 1] = self._wildcard_hit(
                        candidates.row_int(start + int(i))
                    )
            return out

        scored = sharded_map_rows(score, n, workers=workers, shards=shards)
        return scored[:, 0], scored[:, 1], scored[:, 2]

    def ping_mask(self, candidates: AddressSet) -> np.ndarray:
        """Boolean mask of candidates answering the simulated ping.

        Population members are scored entirely in numpy: one (cached)
        :meth:`~repro.ipv6.sets.AddressSet.match_rows` lookup against
        the population, then a gather of per-member verdicts that were
        precomputed with the vectorized keyed hash (bit-identical to
        :meth:`ping`).  Only when wildcard prefixes are configured do
        the *non-member* rows fall back to a per-value prefix check.
        """
        mask = self._verdict_mask(candidates, "ping")
        if self._wildcards:
            for i in np.flatnonzero(self._match_positions(candidates) < 0):
                mask[i] = self._wildcard_hit(candidates.row_int(int(i)))
        return mask

    def rdns_mask(self, candidates: AddressSet) -> np.ndarray:
        """Boolean mask of candidates with simulated rDNS records."""
        return self._verdict_mask(candidates, "rdns")

    def _verdicts(self, which: str) -> np.ndarray:
        """Per-population-row oracle outcomes, one vectorized hash pass."""
        cached = self._ping_verdicts if which == "ping" else self._rdns_verdicts
        if cached is None:
            low, high = self._population.value_words()
            if which == "ping":
                key, rate = self._ping_key, self._ping_rate
            else:
                key, rate = self._rdns_key, self._rdns_rate
            cached = _keyed_uniform_array(low, high, key) < rate
            if which == "ping":
                self._ping_verdicts = cached
            else:
                self._rdns_verdicts = cached
        return cached

    def _verdict_mask(self, candidates: AddressSet, which: str) -> np.ndarray:
        """Match candidates to population rows; gather their verdicts."""
        if candidates.width != self._width:
            raise ValueError(
                f"candidate width {candidates.width} != "
                f"population width {self._width}"
            )
        mask = np.zeros(len(candidates), dtype=bool)
        if not len(candidates) or not len(self._population):
            return mask
        positions = self._match_positions(candidates)
        member = positions >= 0
        if member.any():
            mask[member] = self._verdicts(which)[positions[member]]
        return mask

    # ------------------------------------------------------------------
    # list-based wrappers (compatibility + scalar reference)
    # ------------------------------------------------------------------

    def ping_many(self, values: Iterable[int]) -> List[int]:
        """The subset of ``values`` answering pings.

        Thin wrapper over :meth:`ping_mask`: values are packed into an
        :class:`AddressSet` once and scored by the array oracle —
        including the wildcard-prefix mode, where only non-members take
        the scalar fallback.
        """
        values = list(values)
        return self._select(values, self.ping_mask, self.ping)

    def rdns_many(self, values: Iterable[int]) -> List[int]:
        """The subset of ``values`` with rDNS records."""
        return self._select(list(values), self.rdns_mask, self.rdns)

    def _select(self, values: List[int], mask_fn, scalar_fn) -> List[int]:
        if not values:
            return []
        try:
            candidates = AddressSet.from_ints(
                values, width=self._width, already_truncated=True
            )
        except ValueError:
            # Values outside the population width (negative or too
            # wide) cannot be packed into rows; score the batch with
            # the scalar oracle instead, which treats them as plain
            # non-members — the pre-array behavior.
            return [v for v in values if scalar_fn(v)]
        mask = mask_fn(candidates)
        return [values[i] for i in np.flatnonzero(mask)]

    def responding_set(self) -> AddressSet:
        """All population members that would answer a ping, as rows.

        One vectorized keyed-hash pass over the population plus a row
        gather — the array-native replacement for the per-int
        ``responding_population`` loop (members never consult
        wildcards).  Rows come back in ascending address order.
        """
        return self._population.take(np.flatnonzero(self._verdicts("ping")))

    def responding_population(self) -> List[int]:
        """All population members that would answer a ping (ascending).

        Compatibility wrapper over :meth:`responding_set`.
        """
        if not len(self._population):
            return []
        return self.responding_set().to_ints()
