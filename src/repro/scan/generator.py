"""Candidate-target generation helpers (Section 5.5).

Thin conveniences over :meth:`repro.core.model.AddressModel.generate_set`:
the heavy lifting (BN sampling, range materialization, dedup, training
exclusion) lives in the model; this module packages the workflow the
evaluation uses — "train on 1K, generate 1M" — and utilities to turn
candidates into /64 prefixes.

The array-native forms (:func:`generate_candidate_set`,
:func:`prefixes64_array`) are the hot paths; the int-list/int-set
functions remain as thin wrappers for interactive use and for external
callers that want Python sets.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Union

import numpy as np

from repro.core.pipeline import EntropyIP
from repro.ipv6.sets import AddressSet
from repro.stats.rng import default_rng


def generate_candidate_set(
    analysis: EntropyIP,
    n: int,
    rng: Optional[np.random.Generator] = None,
    evidence=None,
    state=None,
) -> AddressSet:
    """Generate ``n`` distinct candidates (training excluded) as rows.

    The array-native form: candidates stay an :class:`AddressSet` from
    BN sampling through dedup, with the training set excluded by
    whole-row set algebra — no Python integers anywhere.

    ``state`` accepts a persistent
    :class:`~repro.core.model.GenerationSession` (see
    :meth:`AddressModel.session <repro.core.model.AddressModel.session>`)
    for multi-round workflows: the session must already hold the
    exclusions (seed it with ``analysis.address_set``), and each call's
    candidates are retired from all later calls automatically.
    """
    rng = default_rng(rng)
    if state is not None:
        return analysis.model.generate_set(
            n, rng, evidence=evidence, state=state
        )
    return analysis.model.generate_set(
        n,
        rng,
        evidence=evidence,
        exclude=analysis.address_set,
    )


def generate_candidates(
    analysis: EntropyIP,
    n: int,
    rng: Optional[np.random.Generator] = None,
    evidence=None,
) -> List[int]:
    """Generate ``n`` distinct candidates not seen in training.

    Returns width-nybble integers (128-bit values for full addresses,
    64-bit for prefix mode).  Thin wrapper over
    :func:`generate_candidate_set`.
    """
    return generate_candidate_set(analysis, n, rng, evidence).to_ints()


def prefixes64_array(
    values: Union[AddressSet, np.ndarray, Sequence[int]],
    width_nybbles: Optional[int] = None,
) -> np.ndarray:
    """Sorted distinct /64 identifiers covering ``values``, as uint64.

    The vectorized core of the "New /64s" accounting: an
    :class:`AddressSet` is one column-slice + pack
    (:meth:`AddressSet.prefixes64`); a uint64 array of
    ``width_nybbles``-wide integers is one shift + unique.  Plain
    Python ints are packed through :meth:`AddressSet.from_ints` first.
    """
    if isinstance(values, AddressSet):
        if width_nybbles is not None and width_nybbles != values.width:
            raise ValueError(
                f"width {width_nybbles} != address-set width {values.width}"
            )
        return values.prefixes64()
    width = 32 if width_nybbles is None else width_nybbles
    if width < 16:
        raise ValueError("values narrower than 64 bits have no /64 prefix")
    if (
        isinstance(values, np.ndarray)
        and values.dtype.kind in "ui"
        and width <= 16
    ):
        # width <= 16 fits a uint64 word; shift down to the /64 id.
        if values.dtype.kind == "i" and values.size and values.min() < 0:
            raise ValueError("negative address values have no /64 prefix")
        words = values.astype(np.uint64, copy=False)
        return np.unique(words >> np.uint64(4 * (width - 16)))
    return AddressSet.from_ints(
        [int(v) for v in values], width=width, already_truncated=True
    ).prefixes64()


def prefixes64(
    values: Union[AddressSet, Sequence[int]], width_nybbles: int = 32
) -> Set[int]:
    """The set of /64 network identifiers covering ``values``.

    ``width_nybbles`` tells how wide the integers are (32 for full
    addresses, 16 when already /64 identifiers).  Compatibility wrapper
    returning a Python set; bulk callers should prefer
    :func:`prefixes64_array`.
    """
    if isinstance(values, AddressSet):
        # The set knows its own width; ``width_nybbles`` is ignored.
        return set(map(int, values.prefixes64()))
    if width_nybbles < 16:
        raise ValueError("values narrower than 64 bits have no /64 prefix")
    shift = 4 * (width_nybbles - 16)
    return {v >> shift for v in values}


def new_prefixes64(
    candidates: Union[AddressSet, List[int]],
    training: AddressSet,
) -> Set[int]:
    """/64 prefixes among ``candidates`` that never appear in training."""
    seen = prefixes64(training)
    return prefixes64(candidates, training.width) - seen
