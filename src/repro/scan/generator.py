"""Candidate-target generation helpers (Section 5.5).

Thin conveniences over :meth:`repro.core.model.AddressModel.generate`:
the heavy lifting (BN sampling, range materialization, dedup, training
exclusion) lives in the model; this module packages the workflow the
evaluation uses — "train on 1K, generate 1M" — and utilities to turn
candidates into /64 prefixes.
"""

from __future__ import annotations

from typing import List, Optional, Set

import numpy as np

from repro.core.pipeline import EntropyIP
from repro.ipv6.sets import AddressSet
from repro.stats.rng import default_rng


def generate_candidates(
    analysis: EntropyIP,
    n: int,
    rng: Optional[np.random.Generator] = None,
    evidence=None,
) -> List[int]:
    """Generate ``n`` distinct candidates not seen in training.

    Returns width-nybble integers (128-bit values for full addresses,
    64-bit for prefix mode).
    """
    rng = default_rng(rng)
    return analysis.model.generate(
        n,
        rng,
        evidence=evidence,
        exclude=set(analysis.address_set.to_ints()),
    )


def prefixes64(values: List[int], width_nybbles: int = 32) -> Set[int]:
    """The set of /64 network identifiers covering ``values``.

    ``width_nybbles`` tells how wide the integers are (32 for full
    addresses, 16 when already /64 identifiers).
    """
    if width_nybbles < 16:
        raise ValueError("values narrower than 64 bits have no /64 prefix")
    shift = 4 * (width_nybbles - 16)
    return {v >> shift for v in values}


def new_prefixes64(
    candidates: List[int],
    training: AddressSet,
) -> Set[int]:
    """/64 prefixes among ``candidates`` that never appear in training."""
    seen = prefixes64(training.to_ints(), training.width)
    return prefixes64(candidates, training.width) - seen
