"""Scanning substrate: candidate generation, responder oracle, metrics.

Implements the evaluation methodology of Sections 5.5-5.6: train a model
on 1K known addresses, generate candidate targets, and score them with a
held-out test set, a (simulated) ICMPv6 ping oracle, and a (simulated)
reverse-DNS oracle; count the active /64 prefixes never seen in training
(always against prefix sets of the training set's own nybble width, so
§5.6 prefix-mode runs account correctly).

The whole subsystem is array-native at 1M-candidate scale: candidates
flow as :class:`~repro.ipv6.sets.AddressSet` row batches from the BN
sampler through oracle scoring (boolean masks over vectorized
membership + keyed hashes) to uint64 /64-prefix set algebra.  The
int-list/int-set entry points remain as thin compatibility wrappers.
"""

from repro.scan.evaluate import (
    PrefixPredictionResult,
    ScanResult,
    prefix_prediction_experiment,
    scan_experiment,
    training_size_sweep,
)
from repro.scan.campaign import CampaignResult, ScanCampaign, run_campaign
from repro.scan.generator import (
    generate_candidate_set,
    generate_candidates,
    new_prefixes64,
    prefixes64,
    prefixes64_array,
)
from repro.scan.rdns import SimulatedRdnsZone, rdns_harvest, walk_rdns_tree
from repro.scan.responder import SimulatedResponder

__all__ = [
    "CampaignResult",
    "PrefixPredictionResult",
    "ScanCampaign",
    "run_campaign",
    "ScanResult",
    "SimulatedResponder",
    "SimulatedRdnsZone",
    "generate_candidate_set",
    "generate_candidates",
    "new_prefixes64",
    "prefixes64",
    "prefixes64_array",
    "rdns_harvest",
    "walk_rdns_tree",
    "prefix_prediction_experiment",
    "scan_experiment",
    "training_size_sweep",
]
