"""Scanning substrate: candidate generation, responder oracle, metrics.

Implements the evaluation methodology of Sections 5.5-5.6: train a model
on 1K known addresses, generate candidate targets, and score them with a
held-out test set, a (simulated) ICMPv6 ping oracle, and a (simulated)
reverse-DNS oracle; count the active /64 prefixes never seen in training.
"""

from repro.scan.evaluate import (
    PrefixPredictionResult,
    ScanResult,
    prefix_prediction_experiment,
    scan_experiment,
    training_size_sweep,
)
from repro.scan.campaign import CampaignResult, ScanCampaign, run_campaign
from repro.scan.generator import generate_candidates
from repro.scan.rdns import SimulatedRdnsZone, rdns_harvest, walk_rdns_tree
from repro.scan.responder import SimulatedResponder

__all__ = [
    "CampaignResult",
    "PrefixPredictionResult",
    "ScanCampaign",
    "run_campaign",
    "ScanResult",
    "SimulatedResponder",
    "SimulatedRdnsZone",
    "generate_candidates",
    "rdns_harvest",
    "walk_rdns_tree",
    "prefix_prediction_experiment",
    "scan_experiment",
    "training_size_sweep",
]
