"""Pluggable storage backends for exclusion/dedup address sets.

PR 1–5 grew :class:`~repro.ipv6.sets.BucketTable` into the persistent
exclusion+dedup index behind generation sessions and campaigns.  That
table is a single open-addressing array: excellent to ~10M rows, but a
100M+-row campaign (the north-star's billion-probe regime) pays two
costs a monolith cannot dodge — every growth rehashes *all* stored rows
in one stall, and the int32 slot array tops out at ~1B slots (~500M
rows at load 1/2).

This module puts the table behind a small protocol
(:class:`AddressSetBackend`) so callers choose a layout:

``memory``
    The existing :class:`BucketTable` — one flat table, lowest constant
    factors.  The default, and the reference implementation.

``sharded64``
    :class:`ShardedBucketTable` — per-/64-prefix sub-tables routed by
    the top bits of the SplitMix64 fold of each row's *first packed
    word* (word 0 is the /64 network prefix for full-width rows, so
    shard locality follows prefix locality).  Each shard grows and
    rehashes independently: a growth stall is bounded by the largest
    shard (~1/shards of the rows), and capacity scales to
    ``shards ×`` the monolith's ceiling.

Both backends share exact semantics: batched first-occurrence insert,
word-verified lookup (exact across fold collisions), stream-position
ids, and ``insert_packed(limit=...)`` with per-shard exact rollback.
The test suite pins the sharded backend row-for-row against the
in-memory one and against a Python-set oracle.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Protocol, Tuple, Union

import numpy as np

from repro.ipv6.sets import BucketTable, _mix64


class AddressSetBackend(Protocol):
    """What a generation session needs from an exclusion-set store.

    Any object with these methods/attributes can back a
    :class:`~repro.core.model.GenerationSession`:
    :class:`~repro.ipv6.sets.BucketTable` is the flat in-memory
    implementation, :class:`ShardedBucketTable` the sharded one.
    """

    @property
    def word_count(self) -> int:
        """Packed words per row (the row-shape contract)."""
        ...

    @property
    def rows_stored(self) -> int:
        """Distinct rows stored."""
        ...

    @property
    def rows_offered(self) -> int:
        """Rows ever offered, duplicates included."""
        ...

    @property
    def slot_count(self) -> int:
        """Total allocated probe slots (across shards, if any)."""
        ...

    def __len__(self) -> int: ...

    def insert(
        self, words: np.ndarray, ids: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Batched first-occurrence insert; returns the fresh mask."""
        ...

    def insert_packed(
        self,
        words: np.ndarray,
        ids: Optional[np.ndarray] = None,
        limit: Optional[int] = None,
    ) -> np.ndarray:
        """:meth:`insert` with an exact cap on admitted fresh rows."""
        ...

    def lookup(self, words: np.ndarray) -> np.ndarray:
        """Per-row external id, or -1 when absent."""
        ...

    def contains(self, words: np.ndarray) -> np.ndarray:
        """Boolean membership mask."""
        ...

    def stored_words(self) -> np.ndarray:
        """Stored-rows accessor: an ``(rows_stored, word_count)``
        packed matrix (ordering is backend-defined)."""
        ...

    def state_digest(self) -> str:
        """sha256 over :meth:`stored_words` — a checkpoint round-trip
        equality witness."""
        ...

    def reserve(self, capacity: int) -> None:
        """Grow hook: pre-size for ``capacity`` stored rows."""
        ...

    def insert_reversible(
        self, words: np.ndarray, ids: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """:meth:`insert` with exact single-step rollback: the caller
        must follow up with :meth:`commit_insert` or
        :meth:`revert_insert`.  What the capacity-capped
        :meth:`GenerationSession.observe
        <repro.core.model.GenerationSession.observe>` uses to reject an
        over-cap batch without partially mutating the store."""
        ...

    def revert_insert(self) -> None:
        """Undo the pending :meth:`insert_reversible` exactly."""
        ...

    def commit_insert(self) -> None:
        """Finalize the pending :meth:`insert_reversible`."""
        ...


class ShardedBucketTable:
    """A bank of :class:`BucketTable` shards routed by /64-prefix hash.

    Rows are routed by the **top** ``log2(shards)`` bits of
    ``_mix64(words[:, 0])``.  Two properties make this exact and fast:

    - Equal rows have equal word 0, so duplicates always meet in the
      same shard — per-shard first-occurrence dedup composes to the
      global first-occurrence semantics (the stable partition keeps
      batch order within each shard, and rows in *different* shards
      are necessarily distinct).
    - Each shard masks the *low* bits of the full row fold for its
      slot index, while the router consumed the *top* bits of the
      word-0 mix — independent bit ranges (and, for multi-word rows,
      independent mixes), so routing never starves a shard's slot
      distribution.

    Word 0 is the /64 network prefix for full-width (32-nybble) rows,
    so the shard decomposition follows prefix structure: a campaign's
    per-prefix densification lands in the same shard and its rehash
    cost stays bounded by that shard alone.

    ``insert_packed(limit=...)`` is cross-shard exact: every touched
    shard inserts its slice reversibly
    (:meth:`BucketTable.insert_reversible`), and only when the *global*
    fresh count overshoots the limit are the touched shards reverted
    and re-fed the first ``limit`` fresh rows in global batch order —
    identical admitted rows, ids, and counters to the flat table.
    """

    __slots__ = (
        "_word_count",
        "_shards",
        "_shard_bits",
        "_offered",
        "_revert",
    )

    def __init__(self, word_count: int, capacity: int = 0, shards: int = 64):
        if word_count < 1:
            raise ValueError(f"word_count must be positive, got {word_count}")
        if shards < 1 or shards & (shards - 1):
            raise ValueError(f"shards must be a power of two, got {shards}")
        if shards > 1 << 16:
            raise ValueError(f"shards out of range: {shards}")
        self._word_count = word_count
        self._shard_bits = shards.bit_length() - 1
        per_shard = -(-capacity // shards) if capacity else 0
        self._shards: List[BucketTable] = [
            BucketTable(word_count, capacity=per_shard) for _ in range(shards)
        ]
        self._offered = 0
        # (offered mark, touched shard indices) of the outstanding
        # reversible batch; None when there is none.
        self._revert: Optional[Tuple[int, List[int]]] = None

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    @property
    def word_count(self) -> int:
        return self._word_count

    @property
    def shard_count(self) -> int:
        """Number of sub-tables."""
        return len(self._shards)

    @property
    def rows_stored(self) -> int:
        return len(self)

    @property
    def rows_offered(self) -> int:
        return self._offered

    @property
    def slot_count(self) -> int:
        """Total probe slots across all shards."""
        return sum(shard.slot_count for shard in self._shards)

    @property
    def max_shard_rows(self) -> int:
        """Rows in the fullest shard — what bounds any single rehash."""
        return max(len(shard) for shard in self._shards)

    def stored_words(self) -> np.ndarray:
        """All stored rows, grouped by shard (insertion order within
        each shard).  A copy — shards keep their own columns."""
        return np.vstack([shard.stored_words() for shard in self._shards])

    def state_digest(self) -> str:
        """Order-independent sha256 over the stored row set, in the
        same canonical (lexicographic) order as
        :meth:`BucketTable.state_digest` — so the digest is stable
        across a checkpoint round-trip and even across storage
        backends holding the same rows."""
        import hashlib

        words = self.stored_words()
        if len(words):
            words = words[np.lexsort(words.T[::-1])]
        return hashlib.sha256(
            np.ascontiguousarray(words).tobytes()
        ).hexdigest()

    def reserve(self, capacity: int) -> None:
        """Pre-size every shard for its expected share of ``capacity``
        rows.  Routing is near-uniform, so a shard that overshoots its
        share simply performs one bounded local rehash later."""
        if capacity < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity}")
        per_shard = -(-capacity // len(self._shards))
        for shard in self._shards:
            shard.reserve(per_shard)

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------

    def shard_index(self, words: np.ndarray) -> np.ndarray:
        """Shard of each packed row: top ``shard_bits`` bits of the
        SplitMix64 mix of word 0.  Public so tests can construct
        same-shard and cross-shard collision batches."""
        words = np.ascontiguousarray(words, dtype=np.uint64)
        if self._shard_bits == 0:
            return np.zeros(len(words), dtype=np.int64)
        shift = np.uint64(64 - self._shard_bits)
        return (_mix64(words[:, 0]) >> shift).astype(np.int64)

    def _partition(
        self, words: np.ndarray
    ) -> Iterator[Tuple[int, np.ndarray]]:
        """Yield ``(shard, row_positions)`` runs; positions ascend
        within each run (stable sort), preserving batch order."""
        shard_of = self.shard_index(words)
        order = np.argsort(shard_of, kind="stable")
        sorted_shards = shard_of[order]
        cuts = np.flatnonzero(sorted_shards[1:] != sorted_shards[:-1]) + 1
        starts = np.concatenate([[0], cuts])
        stops = np.concatenate([cuts, [len(order)]])
        for a, b in zip(starts, stops):
            yield int(sorted_shards[a]), order[a:b]

    def _check(self, words: np.ndarray) -> np.ndarray:
        words = np.ascontiguousarray(words, dtype=np.uint64)
        if words.ndim != 2 or words.shape[1] != self._word_count:
            raise ValueError(
                f"expected (m, {self._word_count}) packed rows, "
                f"got shape {words.shape}"
            )
        return words

    def _stream_ids(
        self, m: int, ids: Optional[np.ndarray]
    ) -> np.ndarray:
        """Explicit per-row external ids (shards never self-assign:
        their internal offered counters are not the global stream)."""
        if ids is None:
            return np.arange(self._offered, self._offered + m, dtype=np.int64)
        ids = np.ascontiguousarray(ids, dtype=np.int64)
        if ids.shape != (m,):
            raise ValueError("ids must be one per inserted row")
        return ids

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------

    def insert(
        self, words: np.ndarray, ids: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Batched first-occurrence insert across shards.

        Same contract as :meth:`BucketTable.insert`: returns the fresh
        mask in batch order; default ids are global stream positions.
        """
        words = self._check(words)
        m = len(words)
        ids = self._stream_ids(m, ids)
        self._offered += m
        self._revert = None
        fresh = np.zeros(m, dtype=bool)
        if m == 0:
            return fresh
        for shard, rows in self._partition(words):
            fresh[rows] = self._shards[shard].insert(words[rows], ids[rows])
        return fresh

    def insert_reversible(
        self, words: np.ndarray, ids: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """:meth:`insert` whose whole batch can be undone exactly
        (per touched shard) with :meth:`revert_insert`."""
        words = self._check(words)
        m = len(words)
        ids = self._stream_ids(m, ids)
        offered_mark = self._offered
        self._offered += m
        fresh = np.zeros(m, dtype=bool)
        touched: List[int] = []
        for shard, rows in self._partition(words):
            fresh[rows] = self._shards[shard].insert_reversible(
                words[rows], ids[rows]
            )
            touched.append(shard)
        self._revert = (offered_mark, touched)
        return fresh

    def revert_insert(self) -> None:
        """Undo the outstanding reversible batch in every touched
        shard; restores the global offered counter."""
        if self._revert is None:
            raise RuntimeError("no reversible insert batch outstanding")
        offered_mark, touched = self._revert
        self._revert = None
        for shard in touched:
            self._shards[shard].revert_insert()
        self._offered = offered_mark

    def commit_insert(self) -> None:
        """Keep the outstanding reversible batch; drop all undo state
        so the shards' won-slot arrays are not pinned."""
        if self._revert is None:
            return
        _, touched = self._revert
        self._revert = None
        for shard in touched:
            self._shards[shard].commit_insert()

    def insert_packed(
        self,
        words: np.ndarray,
        ids: Optional[np.ndarray] = None,
        limit: Optional[int] = None,
    ) -> np.ndarray:
        """Cross-shard :meth:`BucketTable.insert_packed`.

        Identical semantics to the flat table: with a limit, at most
        the first ``limit`` fresh rows *in global batch order* are
        admitted (with their true stream ids), the rest are rolled
        back exactly in whichever shards they landed, and
        ``rows_offered`` counts the full batch.
        """
        if limit is None:
            return self.insert(words, ids)
        if limit < 0:
            raise ValueError(f"limit must be non-negative, got {limit}")
        words = self._check(words)
        offered_mark = self._offered
        fresh = self.insert_reversible(words, ids)
        if int(np.count_nonzero(fresh)) <= limit:
            self.commit_insert()
            return fresh
        self.revert_insert()
        positions = np.flatnonzero(fresh)[:limit]
        if ids is None:
            admit_ids = offered_mark + positions
        else:
            admit_ids = np.ascontiguousarray(ids, dtype=np.int64)[positions]
        limited = np.zeros(len(fresh), dtype=bool)
        if positions.size:
            # Re-admitting only previously-fresh rows: all land fresh.
            self.insert(words[positions], ids=admit_ids)
            limited[positions] = True
        self._offered = offered_mark + len(words)
        return limited

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def lookup(self, words: np.ndarray) -> np.ndarray:
        """Per-row external id, or -1 when absent (word-verified)."""
        words = self._check(words)
        out = np.full(len(words), -1, dtype=np.int64)
        if len(words) == 0 or len(self) == 0:
            return out
        for shard, rows in self._partition(words):
            out[rows] = self._shards[shard].lookup(words[rows])
        return out

    def contains(self, words: np.ndarray) -> np.ndarray:
        """Boolean membership mask."""
        return self.lookup(words) >= 0


#: Registry of named backend constructors.
_BACKENDS = {
    "memory": lambda word_count, capacity: BucketTable(
        word_count, capacity=capacity
    ),
    "sharded64": lambda word_count, capacity: ShardedBucketTable(
        word_count, capacity=capacity
    ),
}

BackendSpec = Union[
    str, AddressSetBackend, Callable[[int, int], AddressSetBackend], None
]


def make_backend(
    spec: BackendSpec, word_count: int, capacity: int = 0
) -> AddressSetBackend:
    """Resolve a backend choice into a live store.

    ``spec`` may be ``None``/``"memory"`` (flat :class:`BucketTable`),
    ``"sharded64"`` (:class:`ShardedBucketTable`), an already-built
    backend instance (validated for ``word_count`` agreement), or a
    callable ``(word_count, capacity) -> backend``.
    """
    if spec is None:
        spec = "memory"
    if isinstance(spec, str):
        try:
            factory = _BACKENDS[spec]
        except KeyError:
            raise ValueError(
                f"unknown backend {spec!r}; "
                f"known: {sorted(_BACKENDS)}"
            ) from None
        return factory(word_count, capacity)
    if callable(spec) and not hasattr(spec, "insert"):
        built = spec(word_count, capacity)
    else:
        built = spec
    if getattr(built, "word_count", word_count) != word_count:
        raise ValueError(
            f"backend stores {built.word_count}-word rows, "
            f"need {word_count}"
        )
    return built
