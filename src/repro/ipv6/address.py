"""IPv6 address parsing and formatting.

Entropy/IP (Section 4.1) treats an IPv6 address as a fixed-width string of
32 hexadecimal characters ("nybbles"), e.g.::

    20010db840011111000000000000111c

This module implements a self-contained :class:`IPv6Address` value type
that converts between

- the RFC 4291 presentation forms (full, compressed with ``::``, and with
  an embedded dotted-quad IPv4 suffix),
- the 128-bit integer form, and
- the paper's fixed-width 32-nybble form (Fig. 3).

The implementation is written from scratch (no :mod:`ipaddress` import) so
the repository is a complete substrate; the test-suite cross-validates it
against the standard library.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Tuple, Union

#: Number of 4-bit nybbles (hex characters) in an IPv6 address.
NYBBLES_PER_ADDRESS = 32

#: Number of bits in an IPv6 address.
BITS_PER_ADDRESS = 128

_HEX_DIGITS = frozenset("0123456789abcdef")

_MAX_VALUE = (1 << BITS_PER_ADDRESS) - 1


class AddressParseError(ValueError):
    """Raised when a string cannot be parsed as an IPv6 address."""


def _parse_ipv4_suffix(text: str) -> Tuple[int, int]:
    """Parse a dotted-quad IPv4 suffix into two 16-bit hextet values.

    RFC 4291 allows the last 32 bits of an IPv6 address to be written in
    IPv4 dotted-quad notation, e.g. ``::ffff:192.0.2.1``.
    """
    parts = text.split(".")
    if len(parts) != 4:
        raise AddressParseError(f"invalid IPv4 suffix: {text!r}")
    octets = []
    for part in parts:
        if not part.isdigit() or (len(part) > 1 and part[0] == "0"):
            raise AddressParseError(f"invalid IPv4 octet: {part!r}")
        value = int(part)
        if value > 255:
            raise AddressParseError(f"IPv4 octet out of range: {part!r}")
        octets.append(value)
    return (octets[0] << 8) | octets[1], (octets[2] << 8) | octets[3]


def _parse_hextet(text: str) -> int:
    """Parse one 16-bit colon-separated group."""
    if not 1 <= len(text) <= 4:
        raise AddressParseError(f"invalid hextet: {text!r}")
    lowered = text.lower()
    if not set(lowered) <= _HEX_DIGITS:
        raise AddressParseError(f"invalid hextet: {text!r}")
    return int(lowered, 16)


def parse_ipv6(text: str) -> int:
    """Parse an RFC 4291 presentation-form IPv6 address into an integer.

    Supports the full form, ``::`` compression, and an embedded IPv4
    dotted-quad suffix.  Raises :class:`AddressParseError` on malformed
    input.
    """
    if not isinstance(text, str):
        raise AddressParseError(f"expected str, got {type(text).__name__}")
    text = text.strip()
    if "%" in text:  # strip zone index, e.g. fe80::1%eth0
        text = text.split("%", 1)[0]
    if not text:
        raise AddressParseError("empty address")
    if text.count("::") > 1:
        raise AddressParseError(f"multiple '::' in {text!r}")

    if "::" in text:
        head_text, tail_text = text.split("::", 1)
        head_parts = head_text.split(":") if head_text else []
        tail_parts = tail_text.split(":") if tail_text else []
    else:
        head_parts = text.split(":")
        tail_parts = None

    def expand(parts: List[str]) -> List[int]:
        hextets: List[int] = []
        for index, part in enumerate(parts):
            if "." in part:
                if index != len(parts) - 1:
                    raise AddressParseError(
                        f"IPv4 suffix not in last position: {text!r}"
                    )
                hextets.extend(_parse_ipv4_suffix(part))
            else:
                hextets.append(_parse_hextet(part))
        return hextets

    head = expand(head_parts)
    if tail_parts is None:
        if len(head) != 8:
            raise AddressParseError(f"expected 8 groups in {text!r}")
        hextets = head
    else:
        tail = expand(tail_parts)
        missing = 8 - len(head) - len(tail)
        if missing < 1:
            raise AddressParseError(f"'::' expands to nothing in {text!r}")
        hextets = head + [0] * missing + tail

    value = 0
    for hextet in hextets:
        value = (value << 16) | hextet
    return value


def parse_hex32(text: str) -> int:
    """Parse the paper's fixed-width 32-hex-character form (Fig. 3)."""
    if len(text) != NYBBLES_PER_ADDRESS:
        raise AddressParseError(
            f"expected {NYBBLES_PER_ADDRESS} hex chars, got {len(text)}"
        )
    lowered = text.lower()
    if not set(lowered) <= _HEX_DIGITS:
        raise AddressParseError(f"invalid hex string: {text!r}")
    return int(lowered, 16)


class IPv6Address:
    """An immutable 128-bit IPv6 address.

    Internally stored as a Python integer; cheap to hash, compare, and
    slice into nybbles.

    >>> addr = IPv6Address("2001:db8::1")
    >>> addr.hex32()
    '20010db8000000000000000000000001'
    >>> addr.nybble(1), addr.nybble(32)
    (2, 1)
    """

    __slots__ = ("_value",)

    def __init__(self, value: Union[int, str, "IPv6Address"]):
        if isinstance(value, IPv6Address):
            self._value = value._value
            return
        if isinstance(value, int):
            if not 0 <= value <= _MAX_VALUE:
                raise AddressParseError(f"integer out of range: {value}")
            self._value = value
            return
        if isinstance(value, str):
            stripped = value.strip().lower()
            if ":" in stripped:
                self._value = parse_ipv6(stripped)
            elif len(stripped) == NYBBLES_PER_ADDRESS:
                self._value = parse_hex32(stripped)
            else:
                raise AddressParseError(f"unrecognized address form: {value!r}")
            return
        raise AddressParseError(f"cannot build address from {type(value).__name__}")

    @property
    def value(self) -> int:
        """The address as a 128-bit integer."""
        return self._value

    def hex32(self) -> str:
        """The fixed-width 32-nybble form used throughout the paper."""
        return format(self._value, "032x")

    def nybble(self, position: int) -> int:
        """Value of the 1-indexed nybble ``position`` (1..32), as in §4.1."""
        if not 1 <= position <= NYBBLES_PER_ADDRESS:
            raise IndexError(f"nybble position out of range: {position}")
        shift = 4 * (NYBBLES_PER_ADDRESS - position)
        return (self._value >> shift) & 0xF

    def nybbles(self) -> Tuple[int, ...]:
        """All 32 nybble values, most significant first."""
        return tuple(
            (self._value >> (4 * (NYBBLES_PER_ADDRESS - 1 - i))) & 0xF
            for i in range(NYBBLES_PER_ADDRESS)
        )

    def bits(self, start: int, stop: int) -> int:
        """Integer value of bit positions ``start`` (inclusive, 0-based,
        MSB-first) through ``stop`` (exclusive)."""
        if not 0 <= start < stop <= BITS_PER_ADDRESS:
            raise IndexError(f"bit range out of bounds: [{start}, {stop})")
        width = stop - start
        shift = BITS_PER_ADDRESS - stop
        return (self._value >> shift) & ((1 << width) - 1)

    def hextets(self) -> Tuple[int, ...]:
        """The eight 16-bit groups, most significant first."""
        return tuple((self._value >> (16 * (7 - i))) & 0xFFFF for i in range(8))

    def exploded(self) -> str:
        """Full presentation form, e.g. ``2001:0db8:0000:...:0001``."""
        return ":".join(format(h, "04x") for h in self.hextets())

    def compressed(self) -> str:
        """RFC 5952 canonical compressed form (longest zero run → ``::``)."""
        hextets = self.hextets()
        best_start, best_len = -1, 0
        run_start, run_len = -1, 0
        for i, hextet in enumerate(hextets):
            if hextet == 0:
                if run_start < 0:
                    run_start, run_len = i, 0
                run_len += 1
                if run_len > best_len:
                    best_start, best_len = run_start, run_len
            else:
                run_start, run_len = -1, 0
        parts = [format(h, "x") for h in hextets]
        if best_len < 2:  # RFC 5952: never compress a single zero group
            return ":".join(parts)
        head = ":".join(parts[:best_start])
        tail = ":".join(parts[best_start + best_len:])
        return f"{head}::{tail}"

    def interface_identifier(self) -> int:
        """The bottom 64 bits (the ostensible IID, RFC 4291)."""
        return self._value & ((1 << 64) - 1)

    def network_identifier(self) -> int:
        """The top 64 bits."""
        return self._value >> 64

    def truncate(self, prefix_bits: int) -> "IPv6Address":
        """Zero all bits past ``prefix_bits`` (keep the network part)."""
        if not 0 <= prefix_bits <= BITS_PER_ADDRESS:
            raise IndexError(f"prefix length out of range: {prefix_bits}")
        if prefix_bits == 0:
            return IPv6Address(0)
        mask = ((1 << prefix_bits) - 1) << (BITS_PER_ADDRESS - prefix_bits)
        return IPv6Address(self._value & mask)

    def replace_bits(self, start: int, stop: int, value: int) -> "IPv6Address":
        """Return a copy with bits [start, stop) replaced by ``value``."""
        if not 0 <= start < stop <= BITS_PER_ADDRESS:
            raise IndexError(f"bit range out of bounds: [{start}, {stop})")
        width = stop - start
        if not 0 <= value < (1 << width):
            raise ValueError(f"value {value} does not fit in {width} bits")
        shift = BITS_PER_ADDRESS - stop
        mask = ((1 << width) - 1) << shift
        return IPv6Address((self._value & ~mask) | (value << shift))

    def __int__(self) -> int:
        return self._value

    def __index__(self) -> int:
        return self._value

    def __eq__(self, other: object) -> bool:
        if isinstance(other, IPv6Address):
            return self._value == other._value
        if isinstance(other, int):
            return self._value == other
        return NotImplemented

    def __lt__(self, other: "IPv6Address") -> bool:
        if isinstance(other, IPv6Address):
            return self._value < other._value
        return NotImplemented

    def __le__(self, other: "IPv6Address") -> bool:
        if isinstance(other, IPv6Address):
            return self._value <= other._value
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._value)

    def __repr__(self) -> str:
        return f"IPv6Address({self.compressed()!r})"

    def __str__(self) -> str:
        return self.compressed()


def addresses_from_text(lines: Iterable[str]) -> Iterator[IPv6Address]:
    """Parse addresses from an iterable of text lines.

    Blank lines and ``#`` comments are skipped; each remaining line must be
    one address in any supported form.
    """
    for line in lines:
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        yield IPv6Address(stripped)
