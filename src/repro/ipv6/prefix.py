"""CIDR prefixes and aggregate counting.

The paper's evaluation leans on prefix-level bookkeeping: stratified
sampling of training data per /32 (Section 3), counting active /64
"subnets" discovered by scanning (Table 4), and the 4-bit Aggregate Count
Ratio (ACR) that Figures 7-10 plot next to entropy.  This module provides
the :class:`Prefix` value type and the aggregate counting primitives; the
ACR metric itself lives in :mod:`repro.core.acr`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Set, Union

from repro.ipv6.address import BITS_PER_ADDRESS, IPv6Address


class Prefix:
    """An IPv6 CIDR prefix (network address + mask length).

    >>> p = Prefix("2001:db8::/32")
    >>> IPv6Address("2001:db8::1") in p
    True
    >>> p.length
    32
    """

    __slots__ = ("_network", "_length")

    def __init__(self, spec: Union[str, "Prefix"], length: int = None):
        if isinstance(spec, Prefix):
            self._network, self._length = spec._network, spec._length
            return
        if isinstance(spec, str) and length is None:
            if "/" not in spec:
                raise ValueError(f"prefix must contain '/': {spec!r}")
            address_text, length_text = spec.rsplit("/", 1)
            address = IPv6Address(address_text)
            length = int(length_text)
        elif isinstance(spec, (str, int, IPv6Address)) and length is not None:
            address = IPv6Address(spec)
        else:
            raise ValueError(f"cannot build prefix from {spec!r}")
        if not 0 <= length <= BITS_PER_ADDRESS:
            raise ValueError(f"prefix length out of range: {length}")
        self._network = address.truncate(length)
        self._length = length

    @property
    def network(self) -> IPv6Address:
        """The (masked) network address."""
        return self._network

    @property
    def length(self) -> int:
        """Mask length in bits."""
        return self._length

    def contains(self, address: Union[IPv6Address, int, str]) -> bool:
        """True if ``address`` falls inside this prefix."""
        return IPv6Address(address).truncate(self._length) == self._network

    __contains__ = contains

    def subsumes(self, other: "Prefix") -> bool:
        """True if ``other`` is equal to or nested inside this prefix."""
        return other._length >= self._length and self.contains(other._network)

    def first_address(self) -> IPv6Address:
        """Lowest address in the prefix."""
        return self._network

    def last_address(self) -> IPv6Address:
        """Highest address in the prefix."""
        host_bits = BITS_PER_ADDRESS - self._length
        return IPv6Address(self._network.value | ((1 << host_bits) - 1))

    def num_addresses(self) -> int:
        """Size of the prefix (2**host_bits)."""
        return 1 << (BITS_PER_ADDRESS - self._length)

    def child(self, index: int, child_length: int) -> "Prefix":
        """The ``index``-th sub-prefix of length ``child_length``."""
        if child_length < self._length:
            raise ValueError("child prefix must be longer than parent")
        extra = child_length - self._length
        if not 0 <= index < (1 << extra):
            raise ValueError(f"child index out of range: {index}")
        shift = BITS_PER_ADDRESS - child_length
        value = self._network.value | (index << shift)
        return Prefix(IPv6Address(value), child_length)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Prefix):
            return self._network == other._network and self._length == other._length
        return NotImplemented

    def __lt__(self, other: "Prefix") -> bool:
        if isinstance(other, Prefix):
            return (self._network.value, self._length) < (
                other._network.value,
                other._length,
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self._network.value, self._length))

    def __repr__(self) -> str:
        return f"Prefix({str(self)!r})"

    def __str__(self) -> str:
        return f"{self._network.compressed()}/{self._length}"


def count_prefixes(
    addresses: Iterable[Union[IPv6Address, int]], length: int
) -> int:
    """Number of distinct ``length``-bit prefixes covering ``addresses``."""
    if not 0 <= length <= BITS_PER_ADDRESS:
        raise ValueError(f"prefix length out of range: {length}")
    shift = BITS_PER_ADDRESS - length
    return len({int(a) >> shift for a in addresses})


def distinct_prefixes(
    addresses: Iterable[Union[IPv6Address, int]], length: int
) -> Set[Prefix]:
    """The set of distinct ``length``-bit prefixes covering ``addresses``."""
    shift = BITS_PER_ADDRESS - length
    networks = {int(a) >> shift for a in addresses}
    return {Prefix(IPv6Address(n << shift), length) for n in networks}


def aggregate_counts(
    addresses: Iterable[Union[IPv6Address, int]],
    lengths: Iterable[int] = None,
) -> Dict[int, int]:
    """Distinct-aggregate counts at each prefix length.

    This is the hierarchical counting of Kohler et al. / Plonka & Berger
    (MRA) restricted to the requested lengths; by default every 4-bit
    (nybble-aligned) length 0..128, which is what the 4-bit ACR uses.
    """
    values = [int(a) for a in addresses]
    if lengths is None:
        lengths = range(0, BITS_PER_ADDRESS + 1, 4)
    counts: Dict[int, int] = {}
    for length in lengths:
        shift = BITS_PER_ADDRESS - length
        counts[length] = len({v >> shift for v in values})
    return counts


def group_by_prefix(
    addresses: Iterable[Union[IPv6Address, int]], length: int
) -> Dict[Prefix, List[IPv6Address]]:
    """Group addresses by their covering ``length``-bit prefix.

    Used for the stratified per-/32 sampling of Section 3.
    """
    shift = BITS_PER_ADDRESS - length
    groups: Dict[int, List[IPv6Address]] = {}
    for address in addresses:
        address = IPv6Address(address)
        groups.setdefault(address.value >> shift, []).append(address)
    return {
        Prefix(IPv6Address(network << shift), length): members
        for network, members in groups.items()
    }


def iter_addresses(prefix: Prefix) -> Iterator[IPv6Address]:
    """Iterate every address in a (small!) prefix, lowest first."""
    base = prefix.network.value
    for offset in range(prefix.num_addresses()):
        yield IPv6Address(base + offset)
