"""Binary prefix trie and Multi-Resolution Aggregate (MRA) analysis.

The 4-bit ACR the paper plots next to entropy (Figs. 7-10) is derived
from the Multi-Resolution Aggregate analysis of Plonka & Berger [27],
itself building on Kohler et al. [19]: count distinct aggregates
(prefixes) of every length and study the count ratios between
resolutions.  This module provides the full substrate:

- :class:`PrefixTrie` — a binary trie over 128-bit addresses with
  per-node counts, supporting aggregate counting at any length and
  dense-prefix discovery;
- :func:`mra_count_ratios` — aggregate-count ratios at a configurable
  bit stride (1, 4 or 16 in the papers);
- :func:`discover_subnets` — the §1 goal ("discover CIDR prefixes,
  IGP subnets"): find maximal prefixes whose address density exceeds a
  threshold, i.e. candidate subnets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.ipv6.address import BITS_PER_ADDRESS, IPv6Address
from repro.ipv6.prefix import Prefix


class _Node:
    __slots__ = ("count", "children")

    def __init__(self):
        self.count = 0
        self.children: List[Optional["_Node"]] = [None, None]


class PrefixTrie:
    """Binary trie over addresses with subtree counts at every node."""

    def __init__(self):
        self._root = _Node()

    def insert(self, address: Union[IPv6Address, int], multiplicity: int = 1):
        """Insert one address (``multiplicity`` occurrences)."""
        if multiplicity < 1:
            raise ValueError("multiplicity must be >= 1")
        value = int(address)
        if not 0 <= value < (1 << BITS_PER_ADDRESS):
            raise ValueError(f"address out of range: {value}")
        node = self._root
        node.count += multiplicity
        for bit_index in range(BITS_PER_ADDRESS):
            bit = (value >> (BITS_PER_ADDRESS - 1 - bit_index)) & 1
            if node.children[bit] is None:
                node.children[bit] = _Node()
            node = node.children[bit]
            node.count += multiplicity

    @classmethod
    def from_addresses(
        cls, addresses: Iterable[Union[IPv6Address, int]]
    ) -> "PrefixTrie":
        """Build a trie from an address iterable."""
        trie = cls()
        for address in addresses:
            trie.insert(address)
        return trie

    @property
    def total(self) -> int:
        """Total inserted multiplicity."""
        return self._root.count

    def count(self, prefix: Prefix) -> int:
        """Number of inserted addresses inside ``prefix``."""
        node = self._root
        value = prefix.network.value
        for bit_index in range(prefix.length):
            bit = (value >> (BITS_PER_ADDRESS - 1 - bit_index)) & 1
            child = node.children[bit]
            if child is None:
                return 0
            node = child
        return node.count

    def aggregates(self, length: int) -> Dict[Prefix, int]:
        """All non-empty aggregates of the given prefix length."""
        if not 0 <= length <= BITS_PER_ADDRESS:
            raise ValueError(f"prefix length out of range: {length}")
        result: Dict[Prefix, int] = {}
        for value, node in self._walk(length):
            shift = BITS_PER_ADDRESS - length
            result[Prefix(IPv6Address(value << shift), length)] = node.count
        return result

    def aggregate_count(self, length: int) -> int:
        """Number of distinct aggregates at the given length."""
        return sum(1 for _ in self._walk(length))

    def _walk(self, depth: int) -> Iterator[Tuple[int, _Node]]:
        """All (path-value, node) pairs at exactly ``depth`` bits."""
        stack: List[Tuple[int, int, _Node]] = [(0, 0, self._root)]
        while stack:
            level, value, node = stack.pop()
            if level == depth:
                yield value, node
                continue
            for bit in (0, 1):
                child = node.children[bit]
                if child is not None:
                    stack.append((level + 1, (value << 1) | bit, child))


def mra_count_ratios(
    addresses: Iterable[Union[IPv6Address, int]],
    bit_stride: int = 4,
) -> List[float]:
    """Aggregate-count ratios between successive resolutions.

    Element i is A_{(i+1)*s} / A_{i*s} for stride s — how many times
    each aggregate splits when the resolution is refined by one stride.
    Plonka & Berger use strides 1 and 16; the paper's figures use 4.
    """
    if bit_stride < 1 or BITS_PER_ADDRESS % bit_stride != 0:
        raise ValueError("bit_stride must divide 128")
    trie = PrefixTrie.from_addresses(addresses)
    counts = [
        trie.aggregate_count(length)
        for length in range(0, BITS_PER_ADDRESS + 1, bit_stride)
    ]
    return [b / a for a, b in zip(counts, counts[1:])]


@dataclass(frozen=True)
class DiscoveredSubnet:
    """A candidate subnet: a prefix with its member count and density."""

    prefix: Prefix
    members: int
    density: float  # members / prefix size, only meaningful when small


def discover_subnets(
    addresses: Iterable[Union[IPv6Address, int]],
    min_members: int = 8,
    max_length: int = 64,
    min_length: int = 48,
    split_ratio: float = 0.75,
) -> List[DiscoveredSubnet]:
    """Find prefixes that plausibly correspond to subnets.

    Walk the trie top-down and report a node as a subnet when it holds
    at least ``min_members`` addresses, sits at a plausible subnet
    depth (at least ``min_length`` bits — shallower balanced splits are
    aggregation points between *different* subnets, so both halves are
    explored), and its members genuinely spread across the prefix
    (neither child holds more than ``split_ratio`` of them).
    ``max_length`` bounds the search at the conventional /64 size.
    """
    if not 0 < split_ratio < 1:
        raise ValueError("split_ratio must be in (0, 1)")
    if not 0 <= min_length <= max_length <= BITS_PER_ADDRESS:
        raise ValueError("need 0 <= min_length <= max_length <= 128")
    trie = PrefixTrie.from_addresses(addresses)
    found: List[DiscoveredSubnet] = []
    stack: List[Tuple[int, int, _Node]] = [(0, 0, trie._root)]
    while stack:
        level, value, node = stack.pop()
        if node.count < min_members:
            continue
        children = [c for c in node.children if c is not None]
        dominant = max((c.count for c in children), default=0)
        balanced = len(children) == 2 and dominant <= split_ratio * node.count
        if level >= max_length or (balanced and level >= min_length):
            shift = BITS_PER_ADDRESS - level
            prefix = Prefix(IPv6Address(value << shift), level)
            size = prefix.num_addresses()
            found.append(
                DiscoveredSubnet(
                    prefix=prefix,
                    members=node.count,
                    density=node.count / size if size else 1.0,
                )
            )
            continue
        for bit in (0, 1):
            child = node.children[bit]
            if child is not None:
                stack.append((level + 1, (value << 1) | bit, child))
    found.sort(key=lambda s: (s.prefix.length, s.prefix.network.value))
    return found
