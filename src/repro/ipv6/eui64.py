"""Modified EUI-64 interface identifiers and embedded IPv4 detection.

The paper repeatedly refers to two structural artifacts of SLAAC
addressing (Sections 1, 5.1, 5.3):

- Modified EUI-64 IIDs derived from 48-bit MAC addresses, which insert
  the constant word ``0xfffe`` in bits 88-104 of the address and flip the
  universal/local ("u") bit — the cause of the entropy dips at bits 88-104
  and 68-72 in Fig. 6;
- IPv6 addresses that embed literal IPv4 addresses, either as hex octets
  (dataset S1, §5.2) or as base-10 octets written across colon-separated
  16-bit words (dataset R4, §5.3).

This module implements the conversions so the dataset generators can
produce such addresses and so analysts can decode what Entropy/IP finds.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

from repro.ipv6.address import IPv6Address

#: The constant 16-bit word EUI-64 inserts between the two MAC halves.
EUI64_FILLER = 0xFFFE

#: Mask of the universal/local bit within a 64-bit IID (bit 7 of the
#: first octet, i.e. bit 70 of the address).
U_BIT = 1 << 57


def iid_from_mac(mac: Union[str, int]) -> int:
    """Build a Modified EUI-64 interface identifier from a MAC address.

    Per RFC 4291 Appendix A: split the 48-bit MAC into OUI and NIC halves,
    insert ``ff:fe`` between them, and invert the universal/local bit.

    >>> hex(iid_from_mac("00:11:22:33:44:55"))
    '0x21122fffe334455'
    """
    value = _mac_to_int(mac)
    oui = value >> 24
    nic = value & 0xFFFFFF
    iid = (oui << 40) | (EUI64_FILLER << 24) | nic
    return iid ^ U_BIT


def mac_from_iid(iid: int) -> Optional[str]:
    """Recover the MAC address from a Modified EUI-64 IID.

    Returns ``None`` if the IID does not carry the ``ff:fe`` filler.
    """
    if not is_eui64_iid(iid):
        return None
    iid ^= U_BIT
    oui = iid >> 40
    nic = iid & 0xFFFFFF
    value = (oui << 24) | nic
    octets = [(value >> (8 * i)) & 0xFF for i in reversed(range(6))]
    return ":".join(format(o, "02x") for o in octets)


def is_eui64_iid(iid: int) -> bool:
    """True if the 64-bit IID has the ``ff:fe`` filler in the middle.

    This is the *stateless* test the paper warns about in Section 1 —
    Entropy/IP itself never uses it for discovery, but the dataset
    generators and decoding helpers do.
    """
    if not 0 <= iid < (1 << 64):
        raise ValueError(f"IID out of range: {iid}")
    return (iid >> 24) & 0xFFFF == EUI64_FILLER


def _mac_to_int(mac: Union[str, int]) -> int:
    if isinstance(mac, int):
        if not 0 <= mac < (1 << 48):
            raise ValueError(f"MAC out of range: {mac}")
        return mac
    cleaned = mac.replace(":", "").replace("-", "").lower()
    if len(cleaned) != 12:
        raise ValueError(f"invalid MAC address: {mac!r}")
    return int(cleaned, 16)


def iid_from_ipv4_hex(ipv4: Union[str, int]) -> int:
    """Embed an IPv4 address as the low 32 bits of an IID (hex octets).

    This is the S1 variant (§5.2): ``203.0.113.5`` → ``::cb00:7105``.
    """
    return _ipv4_to_int(ipv4)


def iid_from_ipv4_decimal_words(ipv4: Union[str, int]) -> int:
    """Embed an IPv4 address as base-10 octets in 16-bit aligned words.

    This is the R4 variant (§5.3): each octet is written in decimal inside
    its own colon-separated word, so ``203.0.113.5`` becomes the IID
    ``0203:0000:0113:0005`` (hex digits spelling the decimal octets).
    """
    value = _ipv4_to_int(ipv4)
    octets = [(value >> (8 * i)) & 0xFF for i in reversed(range(4))]
    iid = 0
    for octet in octets:
        word = int(str(octet), 16)  # decimal digits reinterpreted as hex
        iid = (iid << 16) | word
    return iid


def decode_ipv4_decimal_words(iid: int) -> Optional[str]:
    """Inverse of :func:`iid_from_ipv4_decimal_words`, or ``None``."""
    if not 0 <= iid < (1 << 64):
        raise ValueError(f"IID out of range: {iid}")
    octets = []
    for shift in (48, 32, 16, 0):
        word = (iid >> shift) & 0xFFFF
        text = format(word, "x")
        if not text.isdigit():
            return None
        octet = int(text)
        if octet > 255:
            return None
        octets.append(octet)
    return ".".join(str(o) for o in octets)


def embedded_ipv4_dotted_quad(address: IPv6Address) -> str:
    """The low 32 bits of ``address`` rendered as an IPv4 dotted quad.

    Useful when exploring S1-style hex-embedded IPv4 aliases.
    """
    low = int(address) & 0xFFFFFFFF
    octets = [(low >> (8 * i)) & 0xFF for i in reversed(range(4))]
    return ".".join(str(o) for o in octets)


def _ipv4_to_int(ipv4: Union[str, int]) -> int:
    if isinstance(ipv4, int):
        if not 0 <= ipv4 < (1 << 32):
            raise ValueError(f"IPv4 out of range: {ipv4}")
        return ipv4
    parts = ipv4.split(".")
    if len(parts) != 4:
        raise ValueError(f"invalid IPv4 address: {ipv4!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"invalid IPv4 octet: {part!r}")
        value = (value << 8) | octet
    return value


def split_mac(mac: Union[str, int]) -> Tuple[int, int]:
    """Split a MAC into (OUI, NIC) 24-bit halves."""
    value = _mac_to_int(mac)
    return value >> 24, value & 0xFFFFFF
