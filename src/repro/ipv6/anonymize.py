"""Address anonymization, as described in Section 3 of the paper.

    "We changed the first 32 bits in IPv6 addresses to the documentation
    prefix (2001:db8::/32), incrementing the first nybble when necessary.
    To anonymize IPv4 addresses embedded within IPv6 addresses, we changed
    the first byte to the 127.0.0.0/8 prefix."

"Incrementing the first nybble when necessary" preserves the *identity* of
distinct /32s: the first distinct /32 seen maps to ``2001:db8::/32``, the
second to ``3001:db8::/32``, and so on — exactly what makes Fig. 7(b) show
two distinct anonymized prefixes (``20010db8`` / ``30010db8``) for S1's
two real /32s.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.ipv6.address import IPv6Address

#: The IPv6 documentation prefix value for the top 32 bits (2001:0db8).
DOCUMENTATION_TOP32 = 0x20010DB8


class AnonymizationError(ValueError):
    """Raised when a set has more distinct /32s than nybble slots."""


class Anonymizer:
    """Stateful /32 anonymizer preserving distinct-prefix identity.

    Each distinct real top-32-bit value is mapped, in order of first
    appearance, to the documentation prefix with an incremented first
    nybble: ``2001:db8``, ``3001:db8``, ``4001:db8``, ...  At most 14
    distinct /32s can be represented this way (first nybble 2..f).
    """

    def __init__(self):
        self._mapping: Dict[int, int] = {}

    def anonymize(self, address: IPv6Address) -> IPv6Address:
        """Anonymize the top 32 bits of one address."""
        top32 = int(address) >> 96
        if top32 not in self._mapping:
            slot = len(self._mapping)
            first_nybble = 2 + slot
            if first_nybble > 0xF:
                raise AnonymizationError(
                    "more than 14 distinct /32 prefixes; cannot anonymize "
                    "with the incrementing-nybble scheme"
                )
            self._mapping[top32] = (DOCUMENTATION_TOP32 & 0x0FFFFFFF) | (
                first_nybble << 28
            )
        anonymized_top = self._mapping[top32]
        low96 = int(address) & ((1 << 96) - 1)
        return IPv6Address((anonymized_top << 96) | low96)

    @property
    def mapping(self) -> Dict[int, int]:
        """Copy of the real-top32 → anonymized-top32 mapping so far."""
        return dict(self._mapping)


def anonymize_address(
    address: IPv6Address, anonymizer: Optional[Anonymizer] = None
) -> IPv6Address:
    """Anonymize a single address (fresh mapping unless one is passed)."""
    return (anonymizer or Anonymizer()).anonymize(address)


def anonymize_set(addresses: Iterable[IPv6Address]) -> List[IPv6Address]:
    """Anonymize a whole set with a shared, order-consistent mapping."""
    anonymizer = Anonymizer()
    return [anonymizer.anonymize(a) for a in addresses]


def anonymize_embedded_ipv4(ipv4: str) -> str:
    """Anonymize an embedded IPv4 address: first octet → 127."""
    parts = ipv4.split(".")
    if len(parts) != 4:
        raise ValueError(f"invalid IPv4 address: {ipv4!r}")
    return ".".join(["127"] + parts[1:])
