"""The vectorized address-set container the analysis pipeline runs on.

Entropy/IP's analyses (Section 4) are column-oriented: per-nybble entropy,
segment extraction, and value mining all look at the *i-th hex character
across all addresses*.  :class:`AddressSet` therefore stores a set of
addresses as an ``(n, width)`` numpy ``uint8`` matrix of nybble values,
exactly the fixed-width representation of Fig. 3.

``width`` is 32 nybbles for full addresses, but any smaller width is
supported — the prefix-prediction mode of Section 5.6 runs the identical
pipeline on 16-nybble (/64) rows.

Whole-row set algebra runs on packed ``uint64`` words (:func:`pack_rows`):
:class:`BucketTable` is the open-addressing membership index behind both
generation dedup and batch membership
(:meth:`AddressSet.match_rows`/:meth:`~AddressSet.contains_rows`), and
:meth:`AddressSet.prefixes64`/:meth:`~AddressSet.value_words` feed the
scan layer's /64 accounting and keyed-hash oracles — the whole §5.5
scoring path never materializes a per-row Python integer.
:func:`first_occurrence_positions` remains as the sort-based dedup
reference, and the sorted searchsorted index survives as
:meth:`AddressSet._match_rows_sorted` so the perf harness can measure
the bucket table against it on identical batches.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Union

import numpy as np

from repro.ipv6.address import IPv6Address, NYBBLES_PER_ADDRESS

_HEX = "0123456789abcdef"

# ASCII code → nybble value lookup table (255 = invalid).
_ASCII_TO_NYBBLE = np.full(256, 255, dtype=np.uint8)
for _i, _c in enumerate(_HEX):
    _ASCII_TO_NYBBLE[ord(_c)] = _i
    _ASCII_TO_NYBBLE[ord(_c.upper())] = _i

# Nybble value → ASCII hex code (the inverse table).
_NYBBLE_TO_ASCII = np.frombuffer(_HEX.encode("ascii"), dtype=np.uint8).copy()


def _mix64(values: np.ndarray) -> np.ndarray:
    """Vectorized SplitMix64 finalizer (wrapping uint64 arithmetic)."""
    values = values + np.uint64(0x9E3779B97F4A7C15)
    values = (values ^ (values >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    values = (values ^ (values >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return values ^ (values >> np.uint64(31))


def _mix_words(words: np.ndarray) -> np.ndarray:
    """Fold an ``(n, k)`` packed-row matrix into one well-mixed uint64
    per row (SplitMix64 chained across the word columns)."""
    mixed = np.zeros(len(words), dtype=np.uint64)
    for j in range(words.shape[1]):
        mixed = _mix64(words[:, j] ^ mixed)
    return mixed


def pack_rows(matrix: np.ndarray) -> np.ndarray:
    """Pack an ``(n, width)`` nybble matrix into ``(n, ceil(width/16))``
    big-endian ``uint64`` words.

    Two rows are equal iff their packed words are equal (narrow widths
    are zero-padded on the right), so whole-row set algebra can run on
    a couple of integer columns instead of ``width`` bytes.
    """
    m = np.ascontiguousarray(matrix, dtype=np.uint8)
    n, width = m.shape
    word_count = max((width + 15) // 16, 1)
    padded_width = word_count * 16
    if padded_width != width:
        padded = np.zeros((n, padded_width), dtype=np.uint8)
        padded[:, :width] = m
    else:
        padded = m
    byte_image = (padded[:, 0::2] << 4) | padded[:, 1::2]
    return (
        np.ascontiguousarray(byte_image).view(">u8").astype(np.uint64)
    )


def unpack_rows(words: np.ndarray, width: int) -> np.ndarray:
    """Exact inverse of :func:`pack_rows`: ``(n, ceil(width/16))``
    big-endian ``uint64`` words back into an ``(n, width)`` nybble
    matrix.

    Because :func:`pack_rows` zero-pads narrow widths on the right,
    ``unpack_rows(pack_rows(m), m.shape[1]) == m`` bit for bit.  This
    is what lets the fused generation path work purely on packed words
    and materialize the nybble matrix once, for the kept rows only.
    """
    words = np.ascontiguousarray(words, dtype=np.uint64)
    if words.ndim != 2:
        raise ValueError(f"expected 2-D packed words, got {words.ndim}-D")
    n, word_count = words.shape
    if not 1 <= width <= 16 * word_count:
        raise ValueError(
            f"width {width} does not fit {word_count} packed words"
        )
    byte_image = words.astype(">u8").view(np.uint8).reshape(n, 8 * word_count)
    nybbles = np.empty((n, 16 * word_count), dtype=np.uint8)
    nybbles[:, 0::2] = byte_image >> 4
    nybbles[:, 1::2] = byte_image & 0x0F
    return np.ascontiguousarray(nybbles[:, :width])


def in_sorted(sorted_values: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Boolean membership of ``values`` in a sorted 1-D array.

    One ``searchsorted`` per call — the binary-search primitive behind
    the campaign's incremental /64 accounting, where the haystack is a
    running sorted-unique uint64 array.
    """
    values = np.asarray(values)
    if len(sorted_values) == 0 or len(values) == 0:
        return np.zeros(len(values), dtype=bool)
    at = np.minimum(
        np.searchsorted(sorted_values, values), len(sorted_values) - 1
    )
    return sorted_values[at] == values


def merge_sorted_unique(base: np.ndarray, fresh: np.ndarray) -> np.ndarray:
    """Merge sorted-distinct ``fresh`` values into sorted-distinct
    ``base``; ``fresh`` must be disjoint from ``base`` (filter with
    :func:`in_sorted` first).

    One ``searchsorted`` + one ``np.insert`` — O(len(base) +
    len(fresh)) per call, so a campaign that folds each round's new
    /64 prefixes into a running array never re-sorts its history.
    """
    if fresh.size == 0:
        return base
    if base.size == 0:
        return fresh
    return np.insert(base, np.searchsorted(base, fresh), fresh)


def first_occurrence_positions(
    words: np.ndarray, exclude_words: Optional[np.ndarray] = None
) -> np.ndarray:
    """Positions of the first occurrence of each distinct row, ascending.

    ``words`` is an ``(n, k)`` packed-row matrix (see :func:`pack_rows`);
    rows whose value also appears in ``exclude_words`` are suppressed
    entirely.  One ``lexsort`` + adjacent comparison — the vectorized
    heart of generation dedup.
    """
    n = len(words)
    if n == 0:
        return np.empty(0, dtype=np.intp)
    offset = 0
    if exclude_words is not None and len(exclude_words):
        offset = len(exclude_words)
        words = np.vstack([exclude_words, words])
    # Sort by row value only: lexsort is stable, so rows within an
    # equal-value run keep input order — excluded rows (stacked first)
    # and then earlier stream rows win their runs without needing a
    # tie-breaking key.
    if words.shape[1] == 1:
        order = np.argsort(words[:, 0], kind="stable")
    else:
        order = np.lexsort(
            tuple(words[:, j] for j in range(words.shape[1] - 1, -1, -1))
        )
    sorted_words = words[order]
    run_start = np.empty(len(order), dtype=bool)
    run_start[0] = True
    np.any(sorted_words[1:] != sorted_words[:-1], axis=1, out=run_start[1:])
    winners = order[run_start]
    winners = winners[winners >= offset] - offset
    mask = np.zeros(n, dtype=bool)
    mask[winners] = True
    return np.flatnonzero(mask)


class BucketTable:
    """Growable open-addressing membership index over packed rows.

    The random-access floor of a sorted ``searchsorted`` membership
    probe is ~log2(n) dependent cache misses per query; an open-address
    table needs ~1-2 independent gathers at load factor <= 1/2.  Rows
    are keyed by their SplitMix64-mixed fold (:func:`_mix_words`),
    probed linearly in a power-of-two slot array, and every key match
    is verified against the actual packed words — so two *distinct*
    rows whose 64-bit folds collide simply occupy adjacent slots and
    both remain individually findable (the probe walks past a
    word-mismatched key instead of stopping).  Exactness never depends
    on the fold being collision-free.

    The table is growable: :meth:`insert` accepts batches, suppresses
    rows already present (first occurrence wins), and doubles the slot
    array whenever the load factor would pass 1/2.  That makes it both
    the one-shot index behind :meth:`AddressSet.match_rows` and the
    incrementally-fed dedup set of the generation loop, which inserts
    one candidate batch per round against everything kept so far.

    :meth:`insert_packed` is the first-class incremental API a
    long-lived table (a campaign's combined exclusion+dedup index)
    runs on: batch insert returning the fresh-row mask, an optional
    ``limit`` on how many fresh rows a batch may admit (the rest are
    rolled back exactly, so a generation round that overshoots its
    target never pollutes the persistent state), and the
    :attr:`rows_stored`/:attr:`rows_offered` snapshot counters.
    Growth rehashes from the stored columns only — source matrices
    that were folded in are never re-read.

    All operations are vectorized over batches; nothing on the probe
    path touches per-row Python.
    """

    __slots__ = (
        "_word_count",
        "_size",
        "_mask",
        "_slots",
        "_claim",
        "_mixed",
        "_words",
        "_ids",
        "_count",
        "_offered",
        "_undo_slots",
        "_undo_grew",
        "_undo_armed",
        "_revert_mark",
    )

    #: Smallest slot-array size (keeps the empty table cheap while
    #: avoiding degenerate single-slot probing).
    _MIN_SIZE = 16

    #: Slot array stays at least this many times larger than the
    #: stored-row count (reciprocal of the maximum load factor).
    _LOAD_NUM = 2

    def __init__(self, word_count: int, capacity: int = 0):
        if word_count < 1:
            raise ValueError(f"word_count must be positive, got {word_count}")
        self._word_count = word_count
        size = self._MIN_SIZE
        while size < self._LOAD_NUM * capacity:
            size *= 2
        self._size = size
        self._mask = np.uint64(size - 1)
        self._slots = np.full(size, -1, dtype=np.int32)
        # Scratch buffer for batched first-occurrence slot claiming;
        # only the entries touched by an insert round are ever written
        # and they are reset immediately after, so the buffer is
        # allocated once per growth instead of once per batch.
        self._claim = np.full(size, -1, dtype=np.int64)
        # Stored-row columns (amortized-doubling appends).
        self._mixed = np.empty(size // 2, dtype=np.uint64)
        self._words = np.empty((size // 2, word_count), dtype=np.uint64)
        self._ids = np.empty(size // 2, dtype=np.int64)
        self._count = 0
        self._offered = 0
        # Per-insert undo log (slot indices written, growth flag) —
        # what makes the bounded :meth:`insert_packed` able to roll an
        # over-admitting batch back exactly.  Slot indices are only
        # recorded while armed (the ``insert_packed(limit=...)`` path):
        # an unarmed bulk insert — e.g. seeding a million-row
        # membership index — must not pin its won-slot arrays for the
        # table's lifetime.
        self._undo_slots: List[np.ndarray] = []
        self._undo_grew = False
        self._undo_armed = False
        # (count, offered) snapshot of the last insert_reversible call;
        # None whenever no reversible batch is outstanding.
        self._revert_mark = None

    def __len__(self) -> int:
        """Number of distinct rows stored."""
        return self._count

    @property
    def word_count(self) -> int:
        """Packed words per stored row (the row-shape contract every
        :class:`~repro.ipv6.backends.AddressSetBackend` exposes)."""
        return self._word_count

    @property
    def rows_stored(self) -> int:
        """Snapshot count of distinct rows stored (same as ``len``)."""
        return self._count

    @property
    def rows_offered(self) -> int:
        """Snapshot count of rows ever offered, duplicates included."""
        return self._offered

    @property
    def slot_count(self) -> int:
        """Current size of the (power-of-two) slot array."""
        return self._size

    def stored_words(self) -> np.ndarray:
        """Read-only view of the distinct stored rows, insertion order.

        The ``stored-words`` accessor of the storage-backend protocol:
        a ``(rows_stored, word_count)`` packed-row matrix.  Rehash and
        rollback both rebuild from these columns, never from any source
        matrix, so the view is always the table's complete truth.
        """
        view = self._words[: self._count]
        view.setflags(write=False)
        return view

    def state_digest(self) -> str:
        """Order-independent sha256 over the stored row *set*.

        Rows are hashed in canonical (lexicographic) order, not stored
        order: the physical append order depends on how the same rows
        were batched (probe-round resolution appends collided rows
        later), but every membership-relevant behavior — ``contains``,
        dedup on insert, ``len`` — depends only on the set.  Two tables
        with equal digests therefore behave identically, which is
        exactly what a checkpoint round-trip needs to verify.
        """
        import hashlib

        words = self._words[: self._count]
        if len(words):
            words = words[np.lexsort(words.T[::-1])]
        return hashlib.sha256(
            np.ascontiguousarray(words).tobytes()
        ).hexdigest()

    def reserve(self, capacity: int) -> None:
        """Grow hook: pre-size slot and storage arrays for ``capacity``
        stored rows, so subsequent inserts up to that point never
        rehash mid-batch.  Growing past current sizes rehashes once,
        now; shrinking is never performed."""
        if capacity < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity}")
        self._ensure_slots(capacity)
        self._ensure_storage(capacity)

    def _ensure_slots(self, total_rows: int) -> bool:
        """Grow the slot array until ``total_rows`` stored rows fit at
        the load-factor bound, rehashing stored rows into the new
        array.  Returns True when a growth (and therefore a rehash)
        happened — callers holding probe positions must restart from
        the home slots.

        The insert loop calls this lazily with the count of rows that
        actually reached an empty slot, not the raw batch size: a
        duplicate-heavy batch (the saturated generation regime) mostly
        lands on its equal rows' occupied slots and must not balloon
        the table.
        """
        if self._LOAD_NUM * total_rows <= self._size:
            return False
        size = self._size
        while self._LOAD_NUM * total_rows > size:
            size *= 2
        self._size = size
        self._mask = np.uint64(size - 1)
        self._slots = np.full(size, -1, dtype=np.int32)
        self._claim = np.full(size, -1, dtype=np.int64)
        if self._count:
            self._place_all(self._mixed[: self._count])
        return True

    def _ensure_storage(self, total_rows: int) -> None:
        """Amortized-doubling growth of the stored-row columns; sized
        by rows actually appended, independently of the slot array."""
        if total_rows <= len(self._mixed):
            return
        grown = max(2 * len(self._mixed), total_rows, 8)
        mixed = np.empty(grown, dtype=np.uint64)
        words = np.empty((grown, self._word_count), dtype=np.uint64)
        ids = np.empty(grown, dtype=np.int64)
        mixed[: self._count] = self._mixed[: self._count]
        words[: self._count] = self._words[: self._count]
        ids[: self._count] = self._ids[: self._count]
        self._mixed, self._words, self._ids = mixed, words, ids

    def _place_all(self, mixed: np.ndarray) -> None:
        """Rehash: place already-distinct stored rows by storage id."""
        step = np.int64(self._size - 1)
        pending = np.arange(len(mixed), dtype=np.int64)
        probe = (mixed & self._mask).astype(np.int64)
        claim = self._claim
        first_round = True
        while pending.size:
            if first_round:
                # A rehash always starts from an all-empty slot array.
                empty = np.ones(pending.size, dtype=bool)
                first_round = False
            else:
                at = self._slots[probe]
                empty = at < 0
            e_pos = np.flatnonzero(empty)
            placed = np.zeros(pending.size, dtype=bool)
            if e_pos.size:
                slots_e = probe[e_pos]
                rows_e = pending[e_pos]
                # Reversed write: with duplicate slots the final value
                # is the earliest row, i.e. first occurrence wins.
                claim[slots_e[::-1]] = rows_e[::-1]
                winners = claim[slots_e] == rows_e
                self._slots[slots_e[winners]] = rows_e[winners].astype(
                    np.int32
                )
                claim[slots_e] = -1
                placed[e_pos[winners]] = True
            keep = ~placed
            # Every unplaced row advances: occupied slots were simply
            # skipped, and claim losers just watched a *distinct* row
            # (rehash inserts no duplicates) take their slot.
            pending = pending[keep]
            probe = (probe[keep] + 1) & step

    def _append(
        self, words: np.ndarray, mixed: np.ndarray, ids: np.ndarray
    ) -> np.ndarray:
        """Append stored rows; return their storage indices."""
        start = self._count
        stop = start + len(words)
        self._ensure_storage(stop)
        self._words[start:stop] = words
        self._mixed[start:stop] = mixed
        self._ids[start:stop] = ids
        self._count = stop
        return np.arange(start, stop, dtype=np.int64)

    def insert(
        self, words: np.ndarray, ids: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Insert a batch of packed rows; return the "fresh" mask.

        ``words`` is an ``(m, word_count)`` :func:`pack_rows` matrix.
        Rows already present in the table — or duplicated earlier in
        this same batch — are suppressed; the returned boolean mask
        marks the rows that were actually added (the first occurrence
        of each new distinct row, in batch order).  ``ids`` optionally
        assigns the external identifier :meth:`lookup` reports for each
        row (defaults to the running count of rows ever offered, i.e.
        the stream position).
        """
        words = np.ascontiguousarray(words, dtype=np.uint64)
        if words.ndim != 2 or words.shape[1] != self._word_count:
            raise ValueError(
                f"expected (m, {self._word_count}) packed rows, "
                f"got shape {words.shape}"
            )
        m = len(words)
        fresh = np.zeros(m, dtype=bool)
        if ids is None:
            ids = np.arange(self._offered, self._offered + m, dtype=np.int64)
        else:
            ids = np.ascontiguousarray(ids, dtype=np.int64)
            if ids.shape != (m,):
                raise ValueError("ids must be one per inserted row")
        self._offered += m
        self._undo_slots = []
        self._undo_grew = False
        # Any outstanding reversible batch is superseded: reverting it
        # after further inserts would corrupt the probe topology.
        self._revert_mark = None
        if m == 0:
            return fresh
        mixed = _mix_words(words)
        step = np.int64(self._size - 1)
        pending = np.arange(m, dtype=np.int64)
        probe = (mixed & self._mask).astype(np.int64)
        claim = self._claim
        while pending.size:
            if self._count == 0:
                # Empty table: every slot is free, so skip the gather
                # and the occupied branch entirely.
                empty = np.ones(pending.size, dtype=bool)
                at = None
            else:
                at = self._slots[probe]
                empty = at < 0
            e_pos = np.flatnonzero(empty)
            # Grow lazily, sized by rows that actually reached an empty
            # slot this round (an upper bound on this round's appends).
            if e_pos.size and self._ensure_slots(self._count + e_pos.size):
                # The slot array was rebuilt: every computed probe is
                # stale.  Restart the round from the home slots.
                self._undo_grew = True
                step = np.int64(self._size - 1)
                claim = self._claim
                probe = (mixed[pending] & self._mask).astype(np.int64)
                continue
            resolved = np.zeros(pending.size, dtype=bool)
            if e_pos.size:
                slots_e = probe[e_pos]
                rows_e = pending[e_pos]
                # First-occurrence claim: pending stays ascending, so a
                # reversed fancy write leaves the earliest row in each
                # contested slot.
                claim[slots_e[::-1]] = rows_e[::-1]
                claimed = claim[slots_e]
                winners = claimed == rows_e
                win_rows = rows_e[winners]
                storage = self._append(
                    words[win_rows], mixed[win_rows], ids[win_rows]
                )
                won_slots = slots_e[winners]
                self._slots[won_slots] = storage.astype(np.int32)
                if self._undo_armed:
                    self._undo_slots.append(won_slots)
                claim[slots_e] = -1
                fresh[win_rows] = True
                resolved[e_pos[winners]] = True
                # Claim losers compare against their slot's new
                # occupant — the winner — right now instead of burning
                # a whole extra round on it: duplicate-heavy batches
                # (the generation loop's steady state) resolve almost
                # entirely in one pass.
                loser = ~winners
                if loser.any():
                    l_pos = e_pos[loser]
                    l_rows = rows_e[loser]
                    w_rows = claimed[loser]
                    same_key = mixed[l_rows] == mixed[w_rows]
                    dup_l = np.zeros(l_pos.size, dtype=bool)
                    if same_key.any():
                        dup_l[same_key] = (
                            words[l_rows[same_key]] == words[w_rows[same_key]]
                        ).all(axis=1)
                    resolved[l_pos[dup_l]] = True
                    advance_l = l_pos[~dup_l]
                    probe[advance_l] = (probe[advance_l] + 1) & step
            o_pos = np.flatnonzero(~empty)
            if o_pos.size:
                stored = at[o_pos]
                rows_o = pending[o_pos]
                key_eq = self._mixed[stored] == mixed[rows_o]
                duplicate = np.zeros(o_pos.size, dtype=bool)
                if key_eq.any():
                    cand = stored[key_eq]
                    rows_eq = rows_o[key_eq]
                    duplicate[key_eq] = (
                        self._words[cand] == words[rows_eq]
                    ).all(axis=1)
                resolved[o_pos[duplicate]] = True
                mismatch = o_pos[~duplicate]
                probe[mismatch] = (probe[mismatch] + 1) & step
            keep = ~resolved
            pending = pending[keep]
            probe = probe[keep]
        return fresh

    def insert_reversible(
        self, words: np.ndarray, ids: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """:meth:`insert` whose whole batch can still be undone.

        The rollback hook of the storage-backend protocol: the insert
        runs with the undo log armed, and until the next mutating call
        the batch can be removed *exactly* with :meth:`revert_insert`.
        A sharded backend uses this per shard to implement a
        cross-shard ``insert_packed(limit=...)``: every shard inserts
        its slice reversibly, and only if the global fresh count
        overshoots are the touched shards reverted and re-fed the
        admitted prefix.
        """
        count_mark, offered_mark = self._count, self._offered
        self._undo_armed = True
        try:
            fresh = self.insert(words, ids)
        finally:
            self._undo_armed = False
        self._revert_mark = (count_mark, offered_mark)
        return fresh

    def revert_insert(self) -> None:
        """Undo the outstanding :meth:`insert_reversible` batch exactly.

        Raises ``RuntimeError`` when no reversible batch is outstanding
        (never called, already reverted, or superseded by a later
        mutating insert — reverting across later inserts would corrupt
        the probe topology, so the mark is invalidated instead).
        """
        if self._revert_mark is None:
            raise RuntimeError("no reversible insert batch outstanding")
        count_mark, offered_mark = self._revert_mark
        self._revert_mark = None
        self._rollback(count_mark, offered_mark)

    def commit_insert(self) -> None:
        """Keep the outstanding reversible batch and drop its undo
        state, so the won-slot arrays are not pinned for the table's
        lifetime.  A no-op when nothing is outstanding."""
        self._revert_mark = None
        self._undo_slots = []
        self._undo_grew = False

    def insert_packed(
        self,
        words: np.ndarray,
        ids: Optional[np.ndarray] = None,
        limit: Optional[int] = None,
    ) -> np.ndarray:
        """:meth:`insert` with an optional cap on admitted fresh rows.

        With ``limit=None`` this is exactly :meth:`insert`.  With a
        limit, at most the first ``limit`` fresh rows (in batch order)
        are admitted; any further fresh rows are rolled back exactly —
        their slots are released (or, if the batch triggered a growth,
        the slot array is rebuilt from the surviving stored rows), so
        the table ends in the precise state of having only ever seen
        the admitted rows.  This is what lets a persistent campaign
        session feed a whole oversampled generation batch through the
        table without the overshoot beyond the round's target becoming
        permanently excluded.

        ``rows_offered`` counts the full batch either way; admitted
        rows keep their true stream positions as default ids.
        """
        if limit is None:
            return self.insert(words, ids)
        if limit < 0:
            raise ValueError(f"limit must be non-negative, got {limit}")
        count_mark = self._count
        offered_mark = self._offered
        fresh = self.insert_reversible(words, ids)
        if self._count - count_mark <= limit:
            self.commit_insert()
            return fresh
        self.revert_insert()
        positions = np.flatnonzero(fresh)[:limit]
        if ids is None:
            admit_ids = offered_mark + positions
        else:
            admit_ids = np.ascontiguousarray(ids, dtype=np.int64)[positions]
        limited = np.zeros(len(fresh), dtype=bool)
        if positions.size:
            # Re-admitting only previously-fresh rows: every one lands
            # as fresh again, so the admitted set is exact.
            self.insert(words[positions], ids=admit_ids)
            limited[positions] = True
        self._offered = offered_mark + len(words)
        return limited

    def _rollback(self, count_mark: int, offered_mark: int) -> None:
        """Undo the most recent :meth:`insert` call entirely.

        Safe because older entries never probe *past* slots that were
        still empty when they were placed: releasing every slot the
        rolled-back batch claimed restores the exact pre-insert probe
        topology.  If the batch grew (and therefore rehashed) the slot
        array, the array is rebuilt from the surviving stored rows
        instead — stored columns are never re-read from any source
        matrix.
        """
        if self._undo_grew:
            self._slots.fill(-1)
            if count_mark:
                self._place_all(self._mixed[:count_mark])
        else:
            for written in self._undo_slots:
                self._slots[written] = -1
        self._count = count_mark
        self._offered = offered_mark
        self._undo_slots = []
        self._undo_grew = False

    def lookup(self, words: np.ndarray) -> np.ndarray:
        """External id of each queried row, or -1 when absent.

        One ``~1-2``-gather linear probe per query row; every key hit
        is word-verified, so the answer is exact even across fold
        collisions.
        """
        words = np.ascontiguousarray(words, dtype=np.uint64)
        if words.ndim != 2 or words.shape[1] != self._word_count:
            raise ValueError(
                f"expected (m, {self._word_count}) packed rows, "
                f"got shape {words.shape}"
            )
        m = len(words)
        out = np.full(m, -1, dtype=np.int64)
        if m == 0 or self._count == 0:
            return out
        mixed = _mix_words(words)
        step = np.int64(self._size - 1)
        # First probe, unrolled over the whole batch: at load <= 1/2
        # the overwhelming majority of queries resolve here (hit or
        # empty-slot miss), so this iteration runs without any
        # pending-row indirection.  Only the leftovers — occupied slots
        # whose row failed verification — enter the general loop.
        probe = (mixed & self._mask).astype(np.int64)
        at = self._slots[probe]
        o_pos = np.flatnonzero(at >= 0)
        if o_pos.size == 0:
            return out
        stored = at[o_pos]
        key_eq = self._mixed[stored] == mixed[o_pos]
        match = np.zeros(o_pos.size, dtype=bool)
        if key_eq.any():
            cand = stored[key_eq]
            match[key_eq] = (
                self._words[cand] == words[o_pos[key_eq]]
            ).all(axis=1)
        hit = o_pos[match]
        out[hit] = self._ids[stored[match]]
        pending = o_pos[~match]
        probe = (probe[pending] + 1) & step
        while pending.size:
            at = self._slots[probe]
            empty = at < 0  # empty slot: definitive miss
            resolved = empty.copy()
            o_pos = np.flatnonzero(~empty)
            if o_pos.size:
                stored = at[o_pos]
                rows_o = pending[o_pos]
                key_eq = self._mixed[stored] == mixed[rows_o]
                match = np.zeros(o_pos.size, dtype=bool)
                if key_eq.any():
                    cand = stored[key_eq]
                    rows_eq = rows_o[key_eq]
                    match[key_eq] = (
                        self._words[cand] == words[rows_eq]
                    ).all(axis=1)
                hit = o_pos[match]
                out[pending[hit]] = self._ids[stored[match]]
                resolved[hit] = True
                mismatch = o_pos[~match]
                probe[mismatch] = (probe[mismatch] + 1) & step
            keep = ~resolved
            pending = pending[keep]
            probe = probe[keep]
        return out

    def contains(self, words: np.ndarray) -> np.ndarray:
        """Boolean membership mask (thin wrapper over :meth:`lookup`)."""
        return self.lookup(words) >= 0


class AddressSet:
    """An immutable set (with multiplicity) of fixed-width nybble rows.

    >>> s = AddressSet.from_strings(["2001:db8::1", "2001:db8::2"])
    >>> len(s), s.width
    (2, 32)
    >>> s.column(32).tolist()
    [1, 2]
    """

    __slots__ = (
        "_matrix",
        "_member_index",
        "_sorted_index",
        "_packed",
        "__weakref__",
    )

    def __init__(self, matrix: np.ndarray):
        matrix = np.ascontiguousarray(matrix, dtype=np.uint8)
        if matrix.ndim != 2:
            raise ValueError(f"expected 2-D nybble matrix, got {matrix.ndim}-D")
        if matrix.size and matrix.max() > 0xF:
            raise ValueError("nybble matrix contains values > 0xf")
        self._matrix = matrix
        self._matrix.setflags(write=False)
        self._member_index: Optional[BucketTable] = None
        self._sorted_index = None
        self._packed: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_addresses(
        cls, addresses: Iterable[Union[IPv6Address, int]], width: int = NYBBLES_PER_ADDRESS
    ) -> "AddressSet":
        """Build from address objects or 128-bit integers.

        When ``width < 32``, the *top* ``width`` nybbles are kept (so a
        width of 16 keeps the /64 network identifier, as §5.6 needs).
        """
        values = [int(a) for a in addresses]
        return cls.from_ints(values, width=width)

    @classmethod
    def from_ints(
        cls,
        values: Sequence[int],
        width: int = NYBBLES_PER_ADDRESS,
        already_truncated: bool = False,
    ) -> "AddressSet":
        """Build from 128-bit integers (or ``width``-nybble integers).

        ``already_truncated`` marks ``values`` as ``width``-nybble
        integers rather than full 128-bit addresses to shift down.
        """
        if not 1 <= width <= NYBBLES_PER_ADDRESS:
            raise ValueError(f"width out of range: {width}")
        values = list(values)
        shift = 0 if already_truncated else 4 * (NYBBLES_PER_ADDRESS - width)
        # Left-align every value to 128 bits and go through one flat byte
        # buffer: the nybble split is then a vectorized shift/mask rather
        # than a per-value hex format() + string join.
        top_shift = 4 * (NYBBLES_PER_ADDRESS - width)
        buffer = bytearray(16 * len(values))
        for i, v in enumerate(values):
            if v < 0:
                raise ValueError(f"negative address value at index {i}: {v}")
            try:
                buffer[16 * i : 16 * (i + 1)] = ((v >> shift) << top_shift).to_bytes(
                    16, "big"
                )
            except OverflowError:
                raise ValueError(
                    f"value at index {i} does not fit in the requested width"
                ) from None
        flat = np.frombuffer(bytes(buffer), dtype=np.uint8).reshape(len(values), 16)
        nybbles = np.empty((len(values), NYBBLES_PER_ADDRESS), dtype=np.uint8)
        nybbles[:, 0::2] = flat >> 4
        nybbles[:, 1::2] = flat & 0x0F
        return cls(nybbles[:, :width])

    @classmethod
    def from_words(cls, words: np.ndarray, width: int) -> "AddressSet":
        """Build from an array of ``width``-nybble integer values.

        The vectorized inverse of :meth:`segment_values` over whole rows:
        each ``uint64`` word becomes one row of ``width`` nybbles via
        shift/mask, with no per-value Python.  ``width`` must be at most
        16 nybbles (values must fit in one 64-bit word) — wider rows
        come from :meth:`from_ints` or a nybble matrix directly.
        """
        if not 1 <= width <= 16:
            raise ValueError(f"from_words needs 1 <= width <= 16, got {width}")
        words = np.asarray(words)
        if words.dtype.kind not in "ui":
            raise ValueError(f"expected integer words, got dtype {words.dtype}")
        if words.dtype.kind == "i" and words.size and words.min() < 0:
            raise ValueError("negative address values are not representable")
        words = np.ascontiguousarray(words, dtype=np.uint64)
        if words.ndim != 1:
            raise ValueError(f"expected 1-D word array, got {words.ndim}-D")
        if width < 16 and words.size and words.max() >> np.uint64(4 * width):
            raise ValueError("word does not fit in the requested width")
        nybbles = np.empty((len(words), width), dtype=np.uint8)
        for i in range(width):
            shift = np.uint64(4 * (width - 1 - i))
            nybbles[:, i] = (words >> shift) & np.uint64(0xF)
        return cls(nybbles)

    @classmethod
    def from_strings(
        cls, texts: Iterable[str], width: int = NYBBLES_PER_ADDRESS
    ) -> "AddressSet":
        """Build from address strings in any supported text form."""
        return cls.from_addresses((IPv6Address(t) for t in texts), width=width)

    @classmethod
    def empty(cls, width: int = NYBBLES_PER_ADDRESS) -> "AddressSet":
        """An empty set of the given width."""
        return cls(np.empty((0, width), dtype=np.uint8))

    @classmethod
    def _with_packed(cls, matrix: np.ndarray, packed: np.ndarray) -> "AddressSet":
        """Internal: build a set whose packed words are already known.

        Lets producers that computed :func:`pack_rows` anyway (the
        generation dedup) hand the words over, so downstream membership
        and exclusion never re-pack.  ``packed`` must be the exact
        :func:`pack_rows` image of ``matrix`` — not validated.
        """
        built = cls(matrix)
        packed = np.ascontiguousarray(packed, dtype=np.uint64)
        packed.setflags(write=False)
        built._packed = packed
        return built

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------

    @property
    def matrix(self) -> np.ndarray:
        """The read-only ``(n, width)`` nybble matrix."""
        return self._matrix

    @property
    def width(self) -> int:
        """Number of nybbles per row (32 for full addresses)."""
        return self._matrix.shape[1]

    def __len__(self) -> int:
        return self._matrix.shape[0]

    def column(self, position: int) -> np.ndarray:
        """Values of the 1-indexed nybble ``position`` across the set."""
        if not 1 <= position <= self.width:
            raise IndexError(f"nybble position out of range: {position}")
        return self._matrix[:, position - 1]

    def segment_values(self, first: int, last: int) -> np.ndarray:
        """Integer value of nybbles ``first``..``last`` (1-indexed,
        inclusive) for every row.

        Returns ``uint64`` when the segment fits in 64 bits (i.e. at most
        16 nybbles — always true given the hard /32 and /64 segmentation
        cuts), otherwise a Python-object array.
        """
        if not 1 <= first <= last <= self.width:
            raise IndexError(f"invalid segment range: ({first}, {last})")
        nybble_count = last - first + 1
        block = self._matrix[:, first - 1 : last]
        if nybble_count <= 16:
            values = np.zeros(len(self), dtype=np.uint64)
            for i in range(nybble_count):
                values = (values << np.uint64(4)) | block[:, i].astype(np.uint64)
            return values
        result = np.empty(len(self), dtype=object)
        for row in range(len(self)):
            value = 0
            for nybble in block[row]:
                value = (value << 4) | int(nybble)
            result[row] = value
        return result

    def value_words(self) -> "tuple[np.ndarray, np.ndarray]":
        """Each row's integer value as ``(low, high)`` uint64 word arrays.

        ``value == (high << 64) | low`` for the ``width``-nybble row
        integer (the :meth:`row_int` value, not the left-aligned packed
        word) — the split the keyed-hash oracles consume.  For widths of
        at most 16 nybbles ``high`` is all zeros.  The common widths (32
        full / ≤16 prefix mode) read straight off the packed words.
        """
        if self.width == 32:
            packed = self.packed_rows()
            return packed[:, 1].copy(), packed[:, 0].copy()
        if self.width <= 16:
            # The single packed word is the value left-aligned to 16
            # nybbles; shift it back down.
            shift = np.uint64(4 * (16 - self.width))
            low = self.packed_rows()[:, 0] >> shift
            return low, np.zeros(len(self), dtype=np.uint64)
        high = self.segment_values(1, self.width - 16)
        low = self.segment_values(self.width - 15, self.width)
        return low, high

    def prefixes64(self) -> np.ndarray:
        """Sorted distinct /64 identifiers covering the rows, as uint64.

        The /64 network identifier of a ``width``-nybble row is its top
        16 nybbles (``value >> 4*(width-16)``); computing it is one
        column slice + pack, never per-row Python.  Width-16 sets are
        already /64 identifiers and return their own distinct values —
        which is what keeps "new /64s" accounting width-consistent
        between full-address (§5.5) and prefix-mode (§5.6) runs.
        """
        if self.width < 16:
            raise ValueError("rows narrower than 64 bits have no /64 prefix")
        return np.unique(pack_rows(self._matrix[:, :16]).ravel())

    def _hex_text(self) -> str:
        """All rows as one concatenated hex string (vectorized)."""
        return _NYBBLE_TO_ASCII[self._matrix].tobytes().decode("ascii")

    def row_int(self, row: int) -> int:
        """The ``width``-nybble integer value of one row."""
        ascii_row = _NYBBLE_TO_ASCII[self._matrix[row]]
        return int(ascii_row.tobytes().decode("ascii"), 16)

    def to_ints(self) -> List[int]:
        """All rows as ``width``-nybble integers.

        Goes nybble matrix → one hex string → per-row ``int(_, 16)``,
        which keeps all character work vectorized in numpy and the
        integer parse in C.
        """
        text = self._hex_text()
        width = self.width
        return [
            int(text[start : start + width], 16)
            for start in range(0, width * len(self), width)
        ]

    def addresses(self) -> List[IPv6Address]:
        """Rows as full addresses (zero-padded on the right if width<32)."""
        pad = 4 * (NYBBLES_PER_ADDRESS - self.width)
        return [IPv6Address(v << pad) for v in self.to_ints()]

    def hex_rows(self) -> Iterator[str]:
        """Rows as fixed-width hex strings (the Fig. 3 representation)."""
        text = self._hex_text()
        width = self.width
        for start in range(0, width * len(self), width):
            yield text[start : start + width]

    # ------------------------------------------------------------------
    # set operations
    # ------------------------------------------------------------------

    def unique(self) -> "AddressSet":
        """Distinct rows (order not preserved; sorted lexicographically)."""
        return AddressSet(np.unique(self._matrix, axis=0))

    def packed_rows(self) -> np.ndarray:
        """Rows packed into ``(n, ceil(width/16))`` uint64 words.

        Cached (the matrix is immutable), so a candidate batch screened
        by several oracles pays the packing exactly once.
        """
        if self._packed is None:
            self._packed = pack_rows(self._matrix)
            self._packed.setflags(write=False)
        return self._packed

    def _membership_index(self) -> BucketTable:
        """Cached :class:`BucketTable` behind :meth:`match_rows`.

        Every row is inserted with its own position as the external id;
        duplicate rows are suppressed on insert with the first
        occurrence winning, so a lookup reports the first position of
        an equal row — exact across fold collisions, because the table
        word-verifies every key match.  The matrix is immutable, so the
        index is built exactly once however many batches are screened
        against it.
        """
        if self._member_index is None:
            words = self.packed_rows()
            table = BucketTable(words.shape[1], capacity=len(words))
            table.insert(words)
            self._member_index = table
        return self._member_index

    def _sorted_membership_index(self):
        """The PR-2 sorted searchsorted index, kept as the reference
        implementation the perf harness benchmarks the bucket table
        against (and as an independent oracle for equivalence tests).

        Distinct rows are folded into one well-mixed uint64 each
        (:func:`_mix_words` over the packed words) and sorted, so a
        batch lookup is a single uint64 ``searchsorted`` followed by a
        packed-word equality check.  If the fold ever collides on two
        *distinct* rows (probability ~n²/2⁶⁵, and a collision would
        make ``searchsorted`` miss one of them), the index falls back
        to *rank composition*: each word column ranked against its
        sorted uniques, the (rank0, rank1) pair packed into one uint64
        and sorted — three ``searchsorted`` passes, still no per-row
        Python.
        """
        if self._sorted_index is None:
            words = self.packed_rows()
            distinct = first_occurrence_positions(words)
            uwords = words[distinct]
            mixed = _mix_words(uwords)
            order = np.argsort(mixed, kind="stable")
            mixed_sorted = mixed[order]
            if np.any(mixed_sorted[1:] == mixed_sorted[:-1]):
                self._sorted_index = self._build_rank_index(uwords, distinct)
            else:
                self._sorted_index = (
                    "mixed",
                    mixed_sorted,
                    uwords[order],
                    distinct[order],
                )
        return self._sorted_index

    @staticmethod
    def _build_rank_index(uwords: np.ndarray, distinct: np.ndarray):
        """Collision-proof fallback index (see :meth:`_membership_index`)."""
        if uwords.shape[1] == 1:
            order = np.argsort(uwords[:, 0], kind="stable")
            return ("ranks", uwords[order, 0], None, None, distinct[order])
        unique0, rank0 = np.unique(uwords[:, 0], return_inverse=True)
        unique1, rank1 = np.unique(uwords[:, 1], return_inverse=True)
        pairs = (rank0.astype(np.uint64) << np.uint64(32)) | rank1.astype(
            np.uint64
        )
        order = np.argsort(pairs, kind="stable")
        return ("ranks", pairs[order], unique0, unique1, distinct[order])

    def match_rows(self, other: "AddressSet") -> np.ndarray:
        """For each row of ``other``, the position of an equal row in
        self, or -1 when absent.

        The workhorse of oracle scoring: the returned positions let a
        caller gather per-member precomputed values (e.g. responder
        verdicts) in one indexed load.  Runs as a vectorized ~1-2-probe
        open-addressing lookup over the cached
        :meth:`_membership_index` bucket table — no per-address Python,
        and no log-factor binary search.  When self has duplicate rows,
        the first occurrence's position is reported.
        """
        if other.width != self.width:
            raise ValueError("cannot test membership across different widths")
        if len(self) == 0 or len(other) == 0:
            return np.full(len(other), -1, dtype=np.intp)
        return self._membership_index().lookup(other.packed_rows()).astype(
            np.intp, copy=False
        )

    def match_words(self, words: np.ndarray) -> np.ndarray:
        """:meth:`match_rows` against pre-packed query rows.

        ``words`` is a :func:`pack_rows` matrix (or a row slice of
        one); row-sharded scorers use this to probe chunks of a large
        batch without materializing a sub-:class:`AddressSet` per
        chunk.
        """
        if len(self) == 0 or len(words) == 0:
            return np.full(len(words), -1, dtype=np.intp)
        return self._membership_index().lookup(words).astype(
            np.intp, copy=False
        )

    def _match_rows_sorted(self, other: "AddressSet") -> np.ndarray:
        """:meth:`match_rows` on the PR-2 sorted searchsorted index.

        Same contract and results as :meth:`match_rows`; kept so the
        perf harness can time the bucket table against the binary
        search it replaced, and as an independent implementation for
        equivalence tests.
        """
        if other.width != self.width:
            raise ValueError("cannot test membership across different widths")
        out = np.full(len(other), -1, dtype=np.intp)
        if len(self) == 0 or len(other) == 0:
            return out
        index = self._sorted_membership_index()
        query = other.packed_rows()
        if index[0] == "mixed":
            _, mixed_sorted, words_sorted, rows_sorted = index
            qmix = _mix_words(query)
            at = np.minimum(
                np.searchsorted(mixed_sorted, qmix), len(mixed_sorted) - 1
            )
            hit = mixed_sorted[at] == qmix
            # Verify words: a non-member may collide with a member's fold.
            hit &= (words_sorted[at] == query).all(axis=1)
        else:
            _, keys_sorted, unique0, unique1, rows_sorted = index
            if query.shape[1] == 1:
                qkeys = query[:, 0]
                hit = np.ones(len(query), dtype=bool)
            else:
                word0, word1 = query[:, 0], query[:, 1]
                at0 = np.minimum(
                    np.searchsorted(unique0, word0), len(unique0) - 1
                )
                at1 = np.minimum(
                    np.searchsorted(unique1, word1), len(unique1) - 1
                )
                hit = (unique0[at0] == word0) & (unique1[at1] == word1)
                qkeys = (at0.astype(np.uint64) << np.uint64(32)) | at1.astype(
                    np.uint64
                )
            at = np.minimum(np.searchsorted(keys_sorted, qkeys), len(keys_sorted) - 1)
            hit &= keys_sorted[at] == qkeys
        out[hit] = rows_sorted[at[hit]]
        return out

    def contains_rows(self, other: "AddressSet") -> np.ndarray:
        """Vectorized membership: which rows of ``other`` appear in self.

        Returns a boolean array of ``len(other)``; thin wrapper over
        :meth:`match_rows`, so screening a candidate batch against a
        fixed set (training, population) is O((n + m) log n) uint64
        ``searchsorted`` work — no per-address Python, no bytewise
        comparisons.
        """
        if other.width != self.width:
            raise ValueError("cannot test membership across different widths")
        if len(self) == 0 or len(other) == 0:
            return np.zeros(len(other), dtype=bool)
        return self.match_rows(other) >= 0

    def sample(self, k: int, rng: np.random.Generator) -> "AddressSet":
        """Uniform sample of ``k`` rows without replacement."""
        if k > len(self):
            raise ValueError(f"cannot sample {k} of {len(self)} rows")
        index = rng.choice(len(self), size=k, replace=False)
        return AddressSet(self._matrix[np.sort(index)])

    def truncate(self, width: int) -> "AddressSet":
        """Keep only the top ``width`` nybbles of each row."""
        if not 1 <= width <= self.width:
            raise ValueError(f"cannot truncate width {self.width} to {width}")
        return AddressSet(self._matrix[:, :width])

    def concat(self, other: "AddressSet") -> "AddressSet":
        """Concatenate two sets of equal width (keeps duplicates)."""
        if other.width != self.width:
            raise ValueError("cannot concat sets of different widths")
        return AddressSet(np.vstack([self._matrix, other._matrix]))

    def take(self, indices: Sequence[int]) -> "AddressSet":
        """Select rows by position."""
        return AddressSet(self._matrix[np.asarray(indices, dtype=np.intp)])

    def __iter__(self) -> Iterator[IPv6Address]:
        return iter(self.addresses())

    def __eq__(self, other: object) -> bool:
        if isinstance(other, AddressSet):
            return self._matrix.shape == other._matrix.shape and bool(
                np.all(self._matrix == other._matrix)
            )
        return NotImplemented

    def __repr__(self) -> str:
        return f"AddressSet(n={len(self)}, width={self.width})"


def split_train_test(
    address_set: AddressSet, train_size: int, rng: np.random.Generator
) -> "tuple[AddressSet, AddressSet]":
    """Random train/test split, as used throughout Section 5.5."""
    n = len(address_set)
    if train_size >= n:
        raise ValueError(f"train size {train_size} >= set size {n}")
    order = rng.permutation(n)
    train = address_set.take(order[:train_size])
    test = address_set.take(order[train_size:])
    return train, test
