"""The vectorized address-set container the analysis pipeline runs on.

Entropy/IP's analyses (Section 4) are column-oriented: per-nybble entropy,
segment extraction, and value mining all look at the *i-th hex character
across all addresses*.  :class:`AddressSet` therefore stores a set of
addresses as an ``(n, width)`` numpy ``uint8`` matrix of nybble values,
exactly the fixed-width representation of Fig. 3.

``width`` is 32 nybbles for full addresses, but any smaller width is
supported — the prefix-prediction mode of Section 5.6 runs the identical
pipeline on 16-nybble (/64) rows.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Union

import numpy as np

from repro.ipv6.address import IPv6Address, NYBBLES_PER_ADDRESS

_HEX = "0123456789abcdef"

# ASCII code → nybble value lookup table (255 = invalid).
_ASCII_TO_NYBBLE = np.full(256, 255, dtype=np.uint8)
for _i, _c in enumerate(_HEX):
    _ASCII_TO_NYBBLE[ord(_c)] = _i
    _ASCII_TO_NYBBLE[ord(_c.upper())] = _i


class AddressSet:
    """An immutable set (with multiplicity) of fixed-width nybble rows.

    >>> s = AddressSet.from_strings(["2001:db8::1", "2001:db8::2"])
    >>> len(s), s.width
    (2, 32)
    >>> s.column(32).tolist()
    [1, 2]
    """

    __slots__ = ("_matrix",)

    def __init__(self, matrix: np.ndarray):
        matrix = np.ascontiguousarray(matrix, dtype=np.uint8)
        if matrix.ndim != 2:
            raise ValueError(f"expected 2-D nybble matrix, got {matrix.ndim}-D")
        if matrix.size and matrix.max() > 0xF:
            raise ValueError("nybble matrix contains values > 0xf")
        self._matrix = matrix
        self._matrix.setflags(write=False)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_addresses(
        cls, addresses: Iterable[Union[IPv6Address, int]], width: int = NYBBLES_PER_ADDRESS
    ) -> "AddressSet":
        """Build from address objects or 128-bit integers.

        When ``width < 32``, the *top* ``width`` nybbles are kept (so a
        width of 16 keeps the /64 network identifier, as §5.6 needs).
        """
        values = [int(a) for a in addresses]
        return cls.from_ints(values, width=width)

    @classmethod
    def from_ints(
        cls,
        values: Sequence[int],
        width: int = NYBBLES_PER_ADDRESS,
        already_truncated: bool = False,
    ) -> "AddressSet":
        """Build from 128-bit integers (or ``width``-nybble integers).

        ``already_truncated`` marks ``values`` as ``width``-nybble
        integers rather than full 128-bit addresses to shift down.
        """
        if not 1 <= width <= NYBBLES_PER_ADDRESS:
            raise ValueError(f"width out of range: {width}")
        shift = 0 if already_truncated else 4 * (NYBBLES_PER_ADDRESS - width)
        # Go through a single hex string + frombuffer: orders of magnitude
        # faster than per-nybble Python loops for large sets.
        fmt = f"0{width}x"
        text = "".join(format(v >> shift, fmt) for v in values)
        if len(text) != width * len(values):
            raise ValueError("a value does not fit in the requested width")
        flat = np.frombuffer(text.encode("ascii"), dtype=np.uint8)
        matrix = _ASCII_TO_NYBBLE[flat].reshape(len(values), width)
        return cls(matrix)

    @classmethod
    def from_strings(
        cls, texts: Iterable[str], width: int = NYBBLES_PER_ADDRESS
    ) -> "AddressSet":
        """Build from address strings in any supported text form."""
        return cls.from_addresses((IPv6Address(t) for t in texts), width=width)

    @classmethod
    def empty(cls, width: int = NYBBLES_PER_ADDRESS) -> "AddressSet":
        """An empty set of the given width."""
        return cls(np.empty((0, width), dtype=np.uint8))

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------

    @property
    def matrix(self) -> np.ndarray:
        """The read-only ``(n, width)`` nybble matrix."""
        return self._matrix

    @property
    def width(self) -> int:
        """Number of nybbles per row (32 for full addresses)."""
        return self._matrix.shape[1]

    def __len__(self) -> int:
        return self._matrix.shape[0]

    def column(self, position: int) -> np.ndarray:
        """Values of the 1-indexed nybble ``position`` across the set."""
        if not 1 <= position <= self.width:
            raise IndexError(f"nybble position out of range: {position}")
        return self._matrix[:, position - 1]

    def segment_values(self, first: int, last: int) -> np.ndarray:
        """Integer value of nybbles ``first``..``last`` (1-indexed,
        inclusive) for every row.

        Returns ``uint64`` when the segment fits in 64 bits (i.e. at most
        16 nybbles — always true given the hard /32 and /64 segmentation
        cuts), otherwise a Python-object array.
        """
        if not 1 <= first <= last <= self.width:
            raise IndexError(f"invalid segment range: ({first}, {last})")
        nybble_count = last - first + 1
        block = self._matrix[:, first - 1 : last]
        if nybble_count <= 16:
            values = np.zeros(len(self), dtype=np.uint64)
            for i in range(nybble_count):
                values = (values << np.uint64(4)) | block[:, i].astype(np.uint64)
            return values
        result = np.empty(len(self), dtype=object)
        for row in range(len(self)):
            value = 0
            for nybble in block[row]:
                value = (value << 4) | int(nybble)
            result[row] = value
        return result

    def row_int(self, row: int) -> int:
        """The ``width``-nybble integer value of one row."""
        value = 0
        for nybble in self._matrix[row]:
            value = (value << 4) | int(nybble)
        return value

    def to_ints(self) -> List[int]:
        """All rows as ``width``-nybble integers."""
        return [self.row_int(row) for row in range(len(self))]

    def addresses(self) -> List[IPv6Address]:
        """Rows as full addresses (zero-padded on the right if width<32)."""
        pad = 4 * (NYBBLES_PER_ADDRESS - self.width)
        return [IPv6Address(v << pad) for v in self.to_ints()]

    def hex_rows(self) -> Iterator[str]:
        """Rows as fixed-width hex strings (the Fig. 3 representation)."""
        for row in range(len(self)):
            yield "".join(_HEX[n] for n in self._matrix[row])

    # ------------------------------------------------------------------
    # set operations
    # ------------------------------------------------------------------

    def unique(self) -> "AddressSet":
        """Distinct rows (order not preserved; sorted lexicographically)."""
        return AddressSet(np.unique(self._matrix, axis=0))

    def sample(self, k: int, rng: np.random.Generator) -> "AddressSet":
        """Uniform sample of ``k`` rows without replacement."""
        if k > len(self):
            raise ValueError(f"cannot sample {k} of {len(self)} rows")
        index = rng.choice(len(self), size=k, replace=False)
        return AddressSet(self._matrix[np.sort(index)])

    def truncate(self, width: int) -> "AddressSet":
        """Keep only the top ``width`` nybbles of each row."""
        if not 1 <= width <= self.width:
            raise ValueError(f"cannot truncate width {self.width} to {width}")
        return AddressSet(self._matrix[:, :width])

    def concat(self, other: "AddressSet") -> "AddressSet":
        """Concatenate two sets of equal width (keeps duplicates)."""
        if other.width != self.width:
            raise ValueError("cannot concat sets of different widths")
        return AddressSet(np.vstack([self._matrix, other._matrix]))

    def take(self, indices: Sequence[int]) -> "AddressSet":
        """Select rows by position."""
        return AddressSet(self._matrix[np.asarray(indices, dtype=np.intp)])

    def __iter__(self) -> Iterator[IPv6Address]:
        return iter(self.addresses())

    def __eq__(self, other: object) -> bool:
        if isinstance(other, AddressSet):
            return self._matrix.shape == other._matrix.shape and bool(
                np.all(self._matrix == other._matrix)
            )
        return NotImplemented

    def __repr__(self) -> str:
        return f"AddressSet(n={len(self)}, width={self.width})"


def split_train_test(
    address_set: AddressSet, train_size: int, rng: np.random.Generator
) -> "tuple[AddressSet, AddressSet]":
    """Random train/test split, as used throughout Section 5.5."""
    n = len(address_set)
    if train_size >= n:
        raise ValueError(f"train size {train_size} >= set size {n}")
    order = rng.permutation(n)
    train = address_set.take(order[:train_size])
    test = address_set.take(order[train_size:])
    return train, test
