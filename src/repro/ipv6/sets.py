"""The vectorized address-set container the analysis pipeline runs on.

Entropy/IP's analyses (Section 4) are column-oriented: per-nybble entropy,
segment extraction, and value mining all look at the *i-th hex character
across all addresses*.  :class:`AddressSet` therefore stores a set of
addresses as an ``(n, width)`` numpy ``uint8`` matrix of nybble values,
exactly the fixed-width representation of Fig. 3.

``width`` is 32 nybbles for full addresses, but any smaller width is
supported — the prefix-prediction mode of Section 5.6 runs the identical
pipeline on 16-nybble (/64) rows.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Union

import numpy as np

from repro.ipv6.address import IPv6Address, NYBBLES_PER_ADDRESS

_HEX = "0123456789abcdef"

# ASCII code → nybble value lookup table (255 = invalid).
_ASCII_TO_NYBBLE = np.full(256, 255, dtype=np.uint8)
for _i, _c in enumerate(_HEX):
    _ASCII_TO_NYBBLE[ord(_c)] = _i
    _ASCII_TO_NYBBLE[ord(_c.upper())] = _i

# Nybble value → ASCII hex code (the inverse table).
_NYBBLE_TO_ASCII = np.frombuffer(_HEX.encode("ascii"), dtype=np.uint8).copy()


def pack_rows(matrix: np.ndarray) -> np.ndarray:
    """Pack an ``(n, width)`` nybble matrix into ``(n, ceil(width/16))``
    big-endian ``uint64`` words.

    Two rows are equal iff their packed words are equal (narrow widths
    are zero-padded on the right), so whole-row set algebra can run on
    a couple of integer columns instead of ``width`` bytes.
    """
    m = np.ascontiguousarray(matrix, dtype=np.uint8)
    n, width = m.shape
    word_count = max((width + 15) // 16, 1)
    padded_width = word_count * 16
    if padded_width != width:
        padded = np.zeros((n, padded_width), dtype=np.uint8)
        padded[:, :width] = m
    else:
        padded = m
    byte_image = (padded[:, 0::2] << 4) | padded[:, 1::2]
    return (
        np.ascontiguousarray(byte_image).view(">u8").astype(np.uint64)
    )


def first_occurrence_positions(
    words: np.ndarray, exclude_words: Optional[np.ndarray] = None
) -> np.ndarray:
    """Positions of the first occurrence of each distinct row, ascending.

    ``words`` is an ``(n, k)`` packed-row matrix (see :func:`pack_rows`);
    rows whose value also appears in ``exclude_words`` are suppressed
    entirely.  One ``lexsort`` + adjacent comparison — the vectorized
    heart of generation dedup.
    """
    n = len(words)
    if n == 0:
        return np.empty(0, dtype=np.intp)
    offset = 0
    if exclude_words is not None and len(exclude_words):
        offset = len(exclude_words)
        words = np.vstack([exclude_words, words])
    # Sort by row value only: lexsort is stable, so rows within an
    # equal-value run keep input order — excluded rows (stacked first)
    # and then earlier stream rows win their runs without needing a
    # tie-breaking key.
    if words.shape[1] == 1:
        order = np.argsort(words[:, 0], kind="stable")
    else:
        order = np.lexsort(
            tuple(words[:, j] for j in range(words.shape[1] - 1, -1, -1))
        )
    sorted_words = words[order]
    run_start = np.empty(len(order), dtype=bool)
    run_start[0] = True
    np.any(sorted_words[1:] != sorted_words[:-1], axis=1, out=run_start[1:])
    winners = order[run_start]
    winners = winners[winners >= offset] - offset
    mask = np.zeros(n, dtype=bool)
    mask[winners] = True
    return np.flatnonzero(mask)


def row_view(matrix: np.ndarray) -> np.ndarray:
    """Rows of a contiguous uint8 matrix as one opaque value each.

    The ``(n, width)`` matrix is reinterpreted as ``n`` void-dtype
    scalars of ``width`` bytes, which numpy compares bytewise — giving
    O(n log n) whole-row sort/search/unique without per-row Python.

    This is the second of two whole-row encodings on purpose:
    :func:`pack_rows` words win for sort-heavy dedup (integer lexsort
    beats memcmp), while a void view wins for asymmetric membership
    (:meth:`AddressSet.contains_rows` sorts only the small side and
    binary-searches the large one, which packed word *pairs* cannot do
    with a single ``searchsorted``).
    """
    m = np.ascontiguousarray(matrix)
    if m.shape[0] == 0:
        return np.empty(0, dtype=np.dtype((np.void, max(m.shape[1], 1))))
    return m.reshape(m.shape[0], -1).view(np.dtype((np.void, m.shape[1]))).ravel()


class AddressSet:
    """An immutable set (with multiplicity) of fixed-width nybble rows.

    >>> s = AddressSet.from_strings(["2001:db8::1", "2001:db8::2"])
    >>> len(s), s.width
    (2, 32)
    >>> s.column(32).tolist()
    [1, 2]
    """

    __slots__ = ("_matrix",)

    def __init__(self, matrix: np.ndarray):
        matrix = np.ascontiguousarray(matrix, dtype=np.uint8)
        if matrix.ndim != 2:
            raise ValueError(f"expected 2-D nybble matrix, got {matrix.ndim}-D")
        if matrix.size and matrix.max() > 0xF:
            raise ValueError("nybble matrix contains values > 0xf")
        self._matrix = matrix
        self._matrix.setflags(write=False)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_addresses(
        cls, addresses: Iterable[Union[IPv6Address, int]], width: int = NYBBLES_PER_ADDRESS
    ) -> "AddressSet":
        """Build from address objects or 128-bit integers.

        When ``width < 32``, the *top* ``width`` nybbles are kept (so a
        width of 16 keeps the /64 network identifier, as §5.6 needs).
        """
        values = [int(a) for a in addresses]
        return cls.from_ints(values, width=width)

    @classmethod
    def from_ints(
        cls,
        values: Sequence[int],
        width: int = NYBBLES_PER_ADDRESS,
        already_truncated: bool = False,
    ) -> "AddressSet":
        """Build from 128-bit integers (or ``width``-nybble integers).

        ``already_truncated`` marks ``values`` as ``width``-nybble
        integers rather than full 128-bit addresses to shift down.
        """
        if not 1 <= width <= NYBBLES_PER_ADDRESS:
            raise ValueError(f"width out of range: {width}")
        values = list(values)
        shift = 0 if already_truncated else 4 * (NYBBLES_PER_ADDRESS - width)
        # Left-align every value to 128 bits and go through one flat byte
        # buffer: the nybble split is then a vectorized shift/mask rather
        # than a per-value hex format() + string join.
        top_shift = 4 * (NYBBLES_PER_ADDRESS - width)
        buffer = bytearray(16 * len(values))
        for i, v in enumerate(values):
            if v < 0:
                raise ValueError(f"negative address value at index {i}: {v}")
            try:
                buffer[16 * i : 16 * (i + 1)] = ((v >> shift) << top_shift).to_bytes(
                    16, "big"
                )
            except OverflowError:
                raise ValueError(
                    f"value at index {i} does not fit in the requested width"
                ) from None
        flat = np.frombuffer(bytes(buffer), dtype=np.uint8).reshape(len(values), 16)
        nybbles = np.empty((len(values), NYBBLES_PER_ADDRESS), dtype=np.uint8)
        nybbles[:, 0::2] = flat >> 4
        nybbles[:, 1::2] = flat & 0x0F
        return cls(nybbles[:, :width])

    @classmethod
    def from_strings(
        cls, texts: Iterable[str], width: int = NYBBLES_PER_ADDRESS
    ) -> "AddressSet":
        """Build from address strings in any supported text form."""
        return cls.from_addresses((IPv6Address(t) for t in texts), width=width)

    @classmethod
    def empty(cls, width: int = NYBBLES_PER_ADDRESS) -> "AddressSet":
        """An empty set of the given width."""
        return cls(np.empty((0, width), dtype=np.uint8))

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------

    @property
    def matrix(self) -> np.ndarray:
        """The read-only ``(n, width)`` nybble matrix."""
        return self._matrix

    @property
    def width(self) -> int:
        """Number of nybbles per row (32 for full addresses)."""
        return self._matrix.shape[1]

    def __len__(self) -> int:
        return self._matrix.shape[0]

    def column(self, position: int) -> np.ndarray:
        """Values of the 1-indexed nybble ``position`` across the set."""
        if not 1 <= position <= self.width:
            raise IndexError(f"nybble position out of range: {position}")
        return self._matrix[:, position - 1]

    def segment_values(self, first: int, last: int) -> np.ndarray:
        """Integer value of nybbles ``first``..``last`` (1-indexed,
        inclusive) for every row.

        Returns ``uint64`` when the segment fits in 64 bits (i.e. at most
        16 nybbles — always true given the hard /32 and /64 segmentation
        cuts), otherwise a Python-object array.
        """
        if not 1 <= first <= last <= self.width:
            raise IndexError(f"invalid segment range: ({first}, {last})")
        nybble_count = last - first + 1
        block = self._matrix[:, first - 1 : last]
        if nybble_count <= 16:
            values = np.zeros(len(self), dtype=np.uint64)
            for i in range(nybble_count):
                values = (values << np.uint64(4)) | block[:, i].astype(np.uint64)
            return values
        result = np.empty(len(self), dtype=object)
        for row in range(len(self)):
            value = 0
            for nybble in block[row]:
                value = (value << 4) | int(nybble)
            result[row] = value
        return result

    def _hex_text(self) -> str:
        """All rows as one concatenated hex string (vectorized)."""
        return _NYBBLE_TO_ASCII[self._matrix].tobytes().decode("ascii")

    def row_int(self, row: int) -> int:
        """The ``width``-nybble integer value of one row."""
        ascii_row = _NYBBLE_TO_ASCII[self._matrix[row]]
        return int(ascii_row.tobytes().decode("ascii"), 16)

    def to_ints(self) -> List[int]:
        """All rows as ``width``-nybble integers.

        Goes nybble matrix → one hex string → per-row ``int(_, 16)``,
        which keeps all character work vectorized in numpy and the
        integer parse in C.
        """
        text = self._hex_text()
        width = self.width
        return [
            int(text[start : start + width], 16)
            for start in range(0, width * len(self), width)
        ]

    def addresses(self) -> List[IPv6Address]:
        """Rows as full addresses (zero-padded on the right if width<32)."""
        pad = 4 * (NYBBLES_PER_ADDRESS - self.width)
        return [IPv6Address(v << pad) for v in self.to_ints()]

    def hex_rows(self) -> Iterator[str]:
        """Rows as fixed-width hex strings (the Fig. 3 representation)."""
        text = self._hex_text()
        width = self.width
        for start in range(0, width * len(self), width):
            yield text[start : start + width]

    # ------------------------------------------------------------------
    # set operations
    # ------------------------------------------------------------------

    def unique(self) -> "AddressSet":
        """Distinct rows (order not preserved; sorted lexicographically)."""
        return AddressSet(np.unique(self._matrix, axis=0))

    def packed_rows(self) -> np.ndarray:
        """Rows packed into ``(n, ceil(width/16))`` uint64 words."""
        return pack_rows(self._matrix)

    def contains_rows(self, other: "AddressSet") -> np.ndarray:
        """Vectorized membership: which rows of ``other`` appear in self.

        Returns a boolean array of ``len(other)``.  Both sets are viewed
        as void-dtype row scalars and matched with one sort + one
        ``searchsorted``, so screening candidates against a training set
        is O((n + m) log n) numpy instead of per-address Python.
        """
        if other.width != self.width:
            raise ValueError("cannot test membership across different widths")
        if len(self) == 0 or len(other) == 0:
            return np.zeros(len(other), dtype=bool)
        mine = np.sort(row_view(self._matrix))
        theirs = row_view(other._matrix)
        positions = np.searchsorted(mine, theirs)
        positions = np.minimum(positions, len(mine) - 1)
        return mine[positions] == theirs

    def sample(self, k: int, rng: np.random.Generator) -> "AddressSet":
        """Uniform sample of ``k`` rows without replacement."""
        if k > len(self):
            raise ValueError(f"cannot sample {k} of {len(self)} rows")
        index = rng.choice(len(self), size=k, replace=False)
        return AddressSet(self._matrix[np.sort(index)])

    def truncate(self, width: int) -> "AddressSet":
        """Keep only the top ``width`` nybbles of each row."""
        if not 1 <= width <= self.width:
            raise ValueError(f"cannot truncate width {self.width} to {width}")
        return AddressSet(self._matrix[:, :width])

    def concat(self, other: "AddressSet") -> "AddressSet":
        """Concatenate two sets of equal width (keeps duplicates)."""
        if other.width != self.width:
            raise ValueError("cannot concat sets of different widths")
        return AddressSet(np.vstack([self._matrix, other._matrix]))

    def take(self, indices: Sequence[int]) -> "AddressSet":
        """Select rows by position."""
        return AddressSet(self._matrix[np.asarray(indices, dtype=np.intp)])

    def __iter__(self) -> Iterator[IPv6Address]:
        return iter(self.addresses())

    def __eq__(self, other: object) -> bool:
        if isinstance(other, AddressSet):
            return self._matrix.shape == other._matrix.shape and bool(
                np.all(self._matrix == other._matrix)
            )
        return NotImplemented

    def __repr__(self) -> str:
        return f"AddressSet(n={len(self)}, width={self.width})"


def split_train_test(
    address_set: AddressSet, train_size: int, rng: np.random.Generator
) -> "tuple[AddressSet, AddressSet]":
    """Random train/test split, as used throughout Section 5.5."""
    n = len(address_set)
    if train_size >= n:
        raise ValueError(f"train size {train_size} >= set size {n}")
    order = rng.permutation(n)
    train = address_set.take(order[:train_size])
    test = address_set.take(order[train_size:])
    return train, test
