"""IPv6 address substrate for Entropy/IP.

This package implements everything the paper's pipeline needs to know
about IPv6 addresses themselves:

- :mod:`repro.ipv6.address` — parsing/formatting of RFC 4291 text forms
  and the paper's fixed-width 32-nybble form (Fig. 3);
- :mod:`repro.ipv6.prefix` — CIDR prefixes and aggregate counting;
- :mod:`repro.ipv6.eui64` — Modified EUI-64 interface identifiers;
- :mod:`repro.ipv6.anonymize` — the anonymization scheme of Section 3;
- :mod:`repro.ipv6.sets` — the vectorized nybble-matrix container the
  analysis pipeline operates on.
"""

from repro.ipv6.address import (
    IPv6Address,
    NYBBLES_PER_ADDRESS,
    parse_hex32,
    parse_ipv6,
)
from repro.ipv6.anonymize import anonymize_address, anonymize_set
from repro.ipv6.eui64 import (
    embedded_ipv4_dotted_quad,
    iid_from_mac,
    is_eui64_iid,
    mac_from_iid,
)
from repro.ipv6.prefix import Prefix, aggregate_counts, count_prefixes
from repro.ipv6.trie import (
    DiscoveredSubnet,
    PrefixTrie,
    discover_subnets,
    mra_count_ratios,
)
from repro.ipv6.sets import AddressSet

__all__ = [
    "AddressSet",
    "DiscoveredSubnet",
    "PrefixTrie",
    "discover_subnets",
    "mra_count_ratios",
    "IPv6Address",
    "NYBBLES_PER_ADDRESS",
    "Prefix",
    "aggregate_counts",
    "anonymize_address",
    "anonymize_set",
    "count_prefixes",
    "embedded_ipv4_dotted_quad",
    "iid_from_mac",
    "is_eui64_iid",
    "mac_from_iid",
    "parse_hex32",
    "parse_ipv6",
]
