"""The consolidated typed-error hierarchy of the whole package.

Every error the library raises deliberately — capacity caps, serving
backpressure, registry lookups, streaming-ingest drift — derives from
one :class:`ReproError` base, so callers can catch "anything this
package considers a client-actionable condition" in one clause::

    try:
        service.generate(model, client, n)
    except ReproError as exc:
        shed_or_retry(exc)

Each class additionally keeps the builtin base it historically had
(``RuntimeError``, ``KeyError``, ``ValueError``), so existing
``except`` clauses written against the old locations keep working, and
the old defining modules (:mod:`repro.core.model`,
:mod:`repro.serve.registry`, :mod:`repro.serve.lifecycle`,
:mod:`repro.serve.service`) re-export their errors from here —
``from repro.core.model import SessionCapacityError`` still resolves
to the same class object.

Message formatting is uniform: every raise site passes one
pre-formatted, lower-case, single-sentence message (``<subject>:
<detail>``), and :meth:`ReproError.__str__` renders exactly that
string — including for the ``KeyError``-derived classes, which would
otherwise ``repr()`` their argument.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every typed error raised by this package."""

    def __str__(self) -> str:
        # One formatted message per raise site; suppress KeyError's
        # repr-the-argument rendering so all errors print uniformly.
        if len(self.args) == 1:
            return str(self.args[0])
        return super().__str__()


class SessionCapacityError(ReproError, RuntimeError):
    """A capacity-capped :class:`~repro.core.model.GenerationSession`
    would exceed its cap.

    Raised *before* any state mutates: a generate call that asks for
    more rows than the session has capacity left, or an
    ``observe`` batch whose fresh rows overflow the cap (rolled back
    exactly).  The serving layer surfaces this as a clean typed error a
    client can act on (roll the session over, or raise the cap)
    instead of an opaque table growth/rehash.
    """


class ServiceOverloadedError(ReproError, RuntimeError):
    """The bounded work queue is full — shed load or retry later."""


class ServiceClosedError(ReproError, RuntimeError):
    """The service was closed; no further requests are accepted."""


class SessionClosedError(ReproError, RuntimeError):
    """The session was closed (explicitly or by idle eviction)."""


class UnknownSessionError(ReproError, KeyError):
    """No live session under the requested (model, client) key."""


class UnknownModelError(ReproError, KeyError):
    """No registered (live) model under the requested name."""


class ModelDigestMismatch(ReproError, ValueError):
    """The registered model's content digest is not the one requested —
    the model under this name was replaced since the caller last saw
    it."""


class IngestDriftError(ReproError, RuntimeError):
    """The drift signal crossed the refit threshold while automatic
    refits are disabled — the caller must run
    :meth:`~repro.ingest.pipeline.IngestPipeline.refit` explicitly (or
    accept serving a model the feed has drifted away from)."""


class StaleModelError(ReproError, RuntimeError):
    """The registry entry an ingest pipeline maintains was replaced
    behind its back (another writer registered a different digest under
    the same name), so rolling the incremental refit forward would
    silently clobber someone else's model."""


class ExecBackendError(ReproError, ValueError):
    """An execution backend the worker pool cannot provide.

    Raised for backend names outside
    :data:`repro.exec.pool.EXEC_BACKENDS`, or when the process backend
    cannot start *and* automatic fallback to the thread backend was
    disabled (``WorkerPool(..., fallback=False)``).  With fallback
    enabled (the default) a failed process start degrades to threads
    silently — the output is bit-identical either way, only throughput
    differs."""


class RequestTimeoutError(ReproError, RuntimeError):
    """A queued request's deadline expired before a worker picked it
    up — the work function never ran.

    Deadlines are absolute clock readings on the service's own clock
    (``HitlistService(clock=...)``); a worker compares the deadline
    against the clock *before* executing the request and sheds expired
    entries with this error on their future, so a stalled queue cannot
    make a slow client's work even later — it fails fast instead."""


class CheckpointError(ReproError, RuntimeError):
    """A checkpoint file could not be read back: wrong magic, an
    unsupported format version, a payload kind mismatching what the
    caller asked to restore, or a truncated/corrupt payload.  Raised
    by :func:`repro.checkpoint.load_checkpoint` and the
    ``restore``/``resume`` entry points built on it."""


class FaultPlanError(ReproError, ValueError):
    """A fault-injection plan string that cannot be parsed (see
    :mod:`repro.faults` for the ``site@selector:action`` grammar) or
    names an exception outside the injectable allowlist."""


class DriftWindowOverflowError(ReproError, RuntimeError):
    """The drift detector's pending window would exceed its configured
    ``max_pending_rows`` cap.

    Raised *before* the batch's statistics fold in (no partial
    mutation): the caller must either refit — which rebases the window
    — or accept dropping the batch.  An uncapped detector
    (``max_pending_rows=0``) never raises this; it accumulates until a
    refit rebases it."""


__all__ = [
    "CheckpointError",
    "DriftWindowOverflowError",
    "ExecBackendError",
    "FaultPlanError",
    "IngestDriftError",
    "ModelDigestMismatch",
    "ReproError",
    "RequestTimeoutError",
    "ServiceClosedError",
    "ServiceOverloadedError",
    "SessionCapacityError",
    "SessionClosedError",
    "StaleModelError",
    "UnknownModelError",
    "UnknownSessionError",
]
