"""Entropy/IP: Uncovering Structure in IPv6 Addresses — full reproduction.

A from-scratch Python implementation of the Entropy/IP system (Foremski,
Plonka, Berger — IMC 2016): information-theoretic analysis of IPv6
address sets, automatic segmentation, segment value mining, Bayesian
network modeling, interactive conditional browsing, and candidate target
generation for IPv6 scanning.

Quickstart::

    from repro import EntropyIP
    analysis = EntropyIP.fit(list_of_address_strings)
    print(analysis.describe())
    candidates = analysis.generate_addresses(1000)

The curated one-call surface below is the package's public API —
analysis (:class:`EntropyIP`), the serving runtime
(:class:`ModelRegistry`, :class:`SessionSpec`, :class:`HitlistService`),
streaming ingestion (:class:`IngestPipeline`), exclusion-store
selection (:func:`make_backend`) and the consolidated error hierarchy
(:class:`ReproError`).  ``tests/test_public_api.py`` pins ``__all__``
so entry-point drift is a test failure, not a silent break.

See :mod:`repro.core.pipeline` for the facade, :mod:`repro.datasets` for
the synthetic network models used in the evaluation,
:mod:`repro.scan` for the scanning/prediction harness, and
:mod:`repro.ingest` for the online path.
"""

from repro.bayes.structure import StructureConfig
from repro.core.browser import ConditionalBrowser
from repro.core.mining import MiningConfig
from repro.core.pipeline import EntropyIP
from repro.core.segmentation import SegmentationConfig
from repro.errors import ReproError
from repro.ingest import IngestConfig, IngestPipeline
from repro.ipv6.address import IPv6Address
from repro.ipv6.backends import make_backend
from repro.ipv6.prefix import Prefix
from repro.ipv6.sets import AddressSet
from repro.serve import (
    HitlistService,
    ModelRegistry,
    SessionManager,
    SessionSpec,
)

__version__ = "1.0.0"

__all__ = [
    "AddressSet",
    "ConditionalBrowser",
    "EntropyIP",
    "HitlistService",
    "IPv6Address",
    "IngestConfig",
    "IngestPipeline",
    "MiningConfig",
    "ModelRegistry",
    "Prefix",
    "ReproError",
    "SegmentationConfig",
    "SessionManager",
    "SessionSpec",
    "StructureConfig",
    "__version__",
    "make_backend",
]
