"""Entropy/IP: Uncovering Structure in IPv6 Addresses — full reproduction.

A from-scratch Python implementation of the Entropy/IP system (Foremski,
Plonka, Berger — IMC 2016): information-theoretic analysis of IPv6
address sets, automatic segmentation, segment value mining, Bayesian
network modeling, interactive conditional browsing, and candidate target
generation for IPv6 scanning.

Quickstart::

    from repro import EntropyIP
    analysis = EntropyIP.fit(list_of_address_strings)
    print(analysis.describe())
    candidates = analysis.generate_addresses(1000)

See :mod:`repro.core.pipeline` for the facade, :mod:`repro.datasets` for
the synthetic network models used in the evaluation, and
:mod:`repro.scan` for the scanning/prediction harness.
"""

from repro.core.browser import ConditionalBrowser
from repro.core.mining import MiningConfig
from repro.core.pipeline import EntropyIP
from repro.core.segmentation import SegmentationConfig
from repro.bayes.structure import StructureConfig
from repro.ipv6.address import IPv6Address
from repro.ipv6.prefix import Prefix
from repro.ipv6.sets import AddressSet

__version__ = "1.0.0"

__all__ = [
    "AddressSet",
    "ConditionalBrowser",
    "EntropyIP",
    "IPv6Address",
    "MiningConfig",
    "Prefix",
    "SegmentationConfig",
    "StructureConfig",
    "__version__",
]
