"""Command-line interface: ``entropy-ip`` / ``python -m repro``.

Subcommands:

- ``analyze``  — read addresses from a file (or stdin), print the
  entropy/ACR plot, segmentation, mining table and BN structure;
- ``generate`` — fit on a file of addresses and emit candidate targets;
- ``dataset``  — emit one of the built-in synthetic datasets;
- ``scan``     — run the §5.5 scanning experiment on a built-in network;
- ``mi``       — pairwise nybble mutual-information heat map (§6);
- ``compare``  — temporal comparison of two address files (§6);
- ``report``   — full composed analysis report (the §1 "web page");
- ``serve``    — run a :class:`~repro.serve.service.HitlistService`
  over a seed file: a line-protocol loop on stdin, or a synthetic
  concurrent load (``--requests``) that prints requests/s + p50/p99;
- ``ingest``   — replay a time-sliced feed from
  :mod:`repro.datasets.temporal` through the streaming-ingest pipeline
  and report drift scores, refits and sustained ingest rate.

``generate``, ``report``, ``serve`` and ``ingest`` all route through
the serving runtime (:mod:`repro.serve`) rather than hand-rolling
model/session construction — the same registry/lifecycle path
concurrent callers use, with output bit-identical to the direct
library calls.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro.core.pipeline import EntropyIP
from repro.datasets.networks import build_network
from repro.ipv6.address import addresses_from_text
from repro.scan.evaluate import scan_experiment
from repro.viz.figures import (
    render_acr_entropy_plot,
    render_bn_graph,
    render_mining_table,
)

#: Exclusion-store layouts selectable from the CLI (see
#: :mod:`repro.ipv6.backends`); emitted rows are backend-independent.
BACKEND_CHOICES = ("memory", "sharded64")

#: Execution backends for sharded draws (see :mod:`repro.exec.pool`);
#: emitted rows are identical on either — only throughput differs.
EXEC_BACKEND_CHOICES = ("thread", "process")


def _read_addresses(path: str) -> List[str]:
    stream = sys.stdin if path == "-" else open(path, "r", encoding="utf-8")
    try:
        return [a.hex32() for a in addresses_from_text(stream)]
    finally:
        if stream is not sys.stdin:
            stream.close()


def _cmd_analyze(args: argparse.Namespace) -> int:
    addresses = _read_addresses(args.file)
    analysis = EntropyIP.fit(addresses, width=args.width)
    print(render_acr_entropy_plot(analysis, title=f"Entropy/IP: {args.file}"))
    print()
    print(render_mining_table(analysis))
    print()
    print(render_bn_graph(analysis))
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.serve import HitlistService

    addresses = _read_addresses(args.file)
    # One-shot use of the same runtime path the long-running service
    # serves: fit → registry, session → lifecycle, draw → facade.
    # Bit-identical to the direct EntropyIP.fit + generate_addresses
    # call for the same (seed, workers, backend).
    with HitlistService() as service:
        service.fit(args.file, addresses, width=args.width)
        candidates = service.generate(
            args.file,
            "cli",
            args.count,
            seed=args.seed,
            backend=args.backend,
            workers=args.workers or None,
            exec_backend=args.exec_backend,
        )
    for address in candidates.addresses():
        print(address.compressed())
    return 0


def _cmd_dataset(args: argparse.Namespace) -> int:
    network = build_network(args.name)
    sample = network.sample(args.count, seed=args.seed)
    for address in sample.addresses():
        print(address.compressed())
    return 0


def _cmd_scan(args: argparse.Namespace) -> int:
    network = build_network(args.name)
    result = scan_experiment(
        network,
        train_size=args.train,
        n_candidates=args.count,
        seed=args.seed,
        workers=args.workers or None,
        backend=args.backend,
        exec_backend=args.exec_backend,
    )
    print(result.row())
    return 0


def _cmd_mi(args: argparse.Namespace) -> int:
    from repro.ipv6.sets import AddressSet
    from repro.stats.mutual_information import top_dependent_pairs
    from repro.viz.figures import render_mi_heatmap

    addresses = _read_addresses(args.file)
    address_set = AddressSet.from_strings(addresses, width=args.width)
    print(render_mi_heatmap(address_set))
    pairs = top_dependent_pairs(address_set, limit=10)
    if pairs:
        print("\nstrongest non-adjacent dependencies (1-indexed nybbles):")
        for i, j, nmi in pairs:
            print(f"  nybble {i:>2} <-> nybble {j:>2}   NMI={nmi:.2f}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.core.temporal import compare_snapshots
    from repro.viz.figures import render_snapshot_delta

    before = EntropyIP.fit(_read_addresses(args.before), width=args.width)
    after = EntropyIP.fit(_read_addresses(args.after), width=args.width)
    delta = compare_snapshots(before, after)
    print(render_snapshot_delta(delta))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.serve import HitlistService

    with HitlistService() as service:
        service.fit(args.file, _read_addresses(args.file), width=args.width)
        print(
            service.report(
                args.file,
                title=f"Entropy/IP report: {args.file}",
                n_candidates=args.count,
                seed=args.seed,
            )
        )
    return 0


def _save_serve_checkpoint(service, directory: str) -> str:
    """Snapshot every live session into ``directory`` (one file)."""
    import os

    from repro.checkpoint import save_checkpoint

    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, "sessions.ckpt")
    save_checkpoint(
        path, "sessions", {"sessions": service.sessions.snapshot_all()}
    )
    return path


def _restore_serve_checkpoint(service, directory: str) -> int:
    """Reinstall checkpointed client streams, if a checkpoint exists.

    Returns how many streams were restored.  A stream whose model is
    missing or has a different digest is skipped with a warning — the
    rest of the checkpoint still restores (a partial resume beats
    refusing to start).
    """
    import os

    from repro.checkpoint import load_checkpoint
    from repro.errors import CheckpointError, UnknownModelError

    path = os.path.join(directory, "sessions.ckpt")
    if not os.path.exists(path):
        return 0
    restored = 0
    for payload in load_checkpoint(path, kind="sessions")["sessions"]:
        try:
            service.sessions.restore_session(payload)
            restored += 1
        except (CheckpointError, UnknownModelError) as exc:
            print(f"error: skipping checkpointed stream: {exc}",
                  file=sys.stderr)
    return restored


def _serve_stdin(
    service, name: str, width: int, stream,
    checkpoint_dir: Optional[str] = None,
) -> int:
    """The ``serve`` line protocol: one request per line.

    ``gen <client> <n>``        — next n candidates of the client's stream
    ``member <client> <addr>…`` — membership-check rows against the stream
    ``observe <client> <addr>…`` — fold client-observed rows into it
    ``rollover <client>``       — restart the client's stream
    ``ingest <addr>…``          — feed arriving rows into the model's
    streaming-ingest pipeline (drift may refit it; live streams adopt
    the new version without resetting)
    ``stats``                   — service counters + latency percentiles
    ``health``                  — queue depth, shed/timeout/retry and
    exec degradation counters, registered model versions (JSON)
    ``checkpoint``              — snapshot live streams to
    ``--checkpoint-dir`` now (also done automatically on exit)
    ``quit``                    — exit

    A malformed or unknown request — or a request that fails in any
    unforeseen way — yields an ``error:`` line on stderr and the loop
    keeps reading; only ``quit``/EOF (or a real shutdown signal) ends
    it.
    """
    import json

    from repro.errors import ReproError
    from repro.ipv6.sets import AddressSet

    def rows_from(tokens: List[str]) -> AddressSet:
        return AddressSet.from_strings(tokens, width=width)

    for raw in stream:
        tokens = raw.split()
        if not tokens:
            continue
        command, rest = tokens[0].lower(), tokens[1:]
        try:
            if command == "quit":
                break
            elif command == "gen" and len(rest) == 2:
                batch = service.generate(name, rest[0], int(rest[1]))
                for address in batch.addresses():
                    print(address.compressed())
            elif command == "member" and len(rest) >= 2:
                mask = service.membership(name, rest[0], rows_from(rest[1:]))
                for token, seen in zip(rest[1:], mask):
                    print(f"{token} {'seen' if seen else 'new'}")
            elif command == "observe" and len(rest) >= 2:
                session = service.sessions.get(name, rest[0])
                print(f"observed {session.observe(rows_from(rest[1:]))} new")
            elif command == "rollover" and len(rest) == 1:
                service.rollover_session(name, rest[0])
                print(f"rolled over {rest[0]}")
            elif command == "ingest" and len(rest) >= 1:
                report = service.ingest(name, rows_from(rest))
                line = (
                    f"ingested {report.rows} rows, "
                    f"drift {report.signal.score:.3f}"
                )
                if report.refit:
                    line += (
                        f", refit in {report.refit_seconds:.3f}s -> "
                        f"version {report.version}"
                    )
                print(line)
            elif command == "stats" and not rest:
                print(json.dumps(service.stats(), sort_keys=True))
            elif command == "health" and not rest:
                print(json.dumps(service.health(), sort_keys=True))
            elif command == "checkpoint" and not rest:
                if checkpoint_dir is None:
                    print("error: serve was started without "
                          "--checkpoint-dir", file=sys.stderr)
                else:
                    print(
                        f"checkpointed to "
                        f"{_save_serve_checkpoint(service, checkpoint_dir)}"
                    )
            else:
                print(f"error: unknown request {raw.strip()!r}", file=sys.stderr)
        except (ReproError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
        except Exception as exc:  # never let one request kill the loop
            print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
    return 0


def _serve_synthetic(service, name: str, args: argparse.Namespace) -> int:
    """The ``serve --requests N`` mode: measured concurrent load.

    ``--clients`` threads issue ``--requests`` generate calls of
    ``--count`` rows round-robin through the facade; prints the served
    row total and the service's own requests/s + p50/p99 accounting.
    """
    import threading
    import time

    counts = [
        args.requests // args.clients
        + (1 if i < args.requests % args.clients else 0)
        for i in range(args.clients)
    ]

    def drive(index: int, requests: int) -> None:
        for _ in range(requests):
            service.generate(
                name,
                f"client-{index}",
                args.count,
                seed=args.seed + index,
                backend=args.backend,
                workers=args.workers or None,
                exec_backend=args.exec_backend,
            )

    threads = [
        threading.Thread(target=drive, args=(index, requests))
        for index, requests in enumerate(counts)
        if requests
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    stats = service.stats()
    generate = stats["kinds"].get("generate", {})
    rows = args.requests * args.count
    print(
        f"served {args.requests} requests x {args.count} rows "
        f"from {args.clients} clients in {elapsed:.3f}s"
    )
    print(
        f"requests/s={stats['requests_per_second']:.2f}  "
        f"rows/s={rows / elapsed:,.0f}  "
        f"p50={generate.get('p50_ms', 0.0):.3f}ms  "
        f"p99={generate.get('p99_ms', 0.0):.3f}ms"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import HitlistService

    addresses = _read_addresses(args.file)
    name = args.name or args.file
    with HitlistService(
        workers=args.service_workers, max_pending=args.max_pending
    ) as service:
        service.fit(name, addresses, width=args.width)
        if args.checkpoint_dir:
            restored = _restore_serve_checkpoint(service, args.checkpoint_dir)
            if restored:
                print(f"restored {restored} checkpointed stream(s)",
                      file=sys.stderr)
        try:
            if args.requests:
                return _serve_synthetic(service, name, args)
            return _serve_stdin(
                service, name, args.width, sys.stdin,
                checkpoint_dir=args.checkpoint_dir,
            )
        finally:
            # A final sweep so a clean exit (quit/EOF) always leaves a
            # resumable checkpoint behind.
            if args.checkpoint_dir:
                _save_serve_checkpoint(service, args.checkpoint_dir)


def _cmd_ingest(args: argparse.Namespace) -> int:
    import time

    from repro.datasets.temporal import SnapshotSeries, TemporalEvent
    from repro.ingest import IngestConfig
    from repro.serve import HitlistService

    network = build_network(args.name)
    events = ()
    if args.renumber_at is not None:
        events = (TemporalEvent(at_index=args.renumber_at, kind="renumber"),)
    snapshots = SnapshotSeries(
        network,
        n_snapshots=args.snapshots,
        sample_size=args.sample_size,
        churn=args.churn,
        events=events,
        seed=args.seed,
    ).build()
    config = IngestConfig(
        threshold=args.threshold, min_refit_rows=args.min_refit_rows
    )
    with HitlistService() as service:
        service.fit(args.name, snapshots[0])
        if args.resume:
            from repro.checkpoint import load_checkpoint

            pipeline = service.restore_ingest(
                load_checkpoint(args.resume, kind="ingest"), config=config
            )
            print(
                f"resumed from {args.resume}: {pipeline.batches} batches "
                f"({pipeline.rows_ingested} rows) already ingested, "
                f"model version {pipeline.version}"
            )
        else:
            pipeline = service.open_ingest(args.name, config=config)
        batches_done = pipeline.batches
        # A live monitor stream, to demonstrate that drift-triggered
        # rolls never reset a client: rows served before the feed stay
        # retired after it.
        service.open_session(
            args.name,
            "monitor",
            seed=args.seed,
            capacity=args.capacity,
            backend=args.backend,
            workers=args.workers or None,
            exec_backend=args.exec_backend,
        )
        before = service.generate(args.name, "monitor", args.count)
        per_snapshot = max(1, args.batches)
        rows = refits = 0
        refit_seconds = 0.0
        batch_number = 0
        started = time.perf_counter()
        for index, snapshot in enumerate(snapshots[1:], start=1):
            bounds = np.linspace(
                0, len(snapshot), per_snapshot + 1, dtype=int
            )
            for batch_index, (low, high) in enumerate(
                zip(bounds[:-1], bounds[1:]), start=1
            ):
                batch_number += 1
                if batch_number <= batches_done:
                    # Already folded in before the checkpointed process
                    # died; the feed is deterministic, so skipping it
                    # here continues exactly where that run stopped.
                    continue
                report = service.ingest(
                    args.name, snapshot.take(range(low, high))
                )
                rows += report.rows
                line = (
                    f"snapshot {index} batch {batch_index}/{per_snapshot}: "
                    f"{report.rows} rows, drift {report.signal.score:.3f}"
                )
                if report.refit:
                    refits += 1
                    refit_seconds += report.refit_seconds
                    line += (
                        f", refit in {report.refit_seconds:.3f}s -> "
                        f"version {report.version}"
                    )
                print(line)
                if args.checkpoint:
                    from repro.checkpoint import save_checkpoint

                    save_checkpoint(
                        args.checkpoint, "ingest", pipeline.snapshot()
                    )
        elapsed = time.perf_counter() - started
        after = service.generate(args.name, "monitor", args.count)
        entry = service.registry.get(args.name)
        repeats = int(before.contains_rows(after).sum())
        print(
            f"ingested {rows} rows in {elapsed:.3f}s "
            f"({rows / elapsed:,.0f} rows/s), {refits} refits "
            f"({refit_seconds:.3f}s), model version {entry.version} "
            f"({entry.digest[:12]}…)"
        )
        print(
            f"monitor stream: {len(before)} + {len(after)} rows served "
            f"across the roll, {repeats} repeats"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="entropy-ip",
        description="Entropy/IP: uncover structure in IPv6 address sets "
        "(IMC 2016 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    analyze = sub.add_parser("analyze", help="analyze an address file")
    analyze.add_argument("file", help="address file, '-' for stdin")
    analyze.add_argument("--width", type=int, default=32,
                         help="nybbles to analyze (16 = /64 prefix mode)")
    analyze.set_defaults(func=_cmd_analyze)

    generate = sub.add_parser("generate", help="generate candidate targets")
    generate.add_argument("file", help="training address file, '-' for stdin")
    generate.add_argument("--count", type=int, default=1000)
    generate.add_argument("--width", type=int, default=32)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--workers", type=int, default=0,
                          help="shard generation across N worker threads "
                          "(0 = serial; output depends only on the seed)")
    generate.add_argument("--backend", choices=BACKEND_CHOICES, default=None,
                          help="exclusion-store layout (default: memory; "
                          "output is identical for every backend)")
    generate.add_argument("--exec-backend", choices=EXEC_BACKEND_CHOICES,
                          default=None,
                          help="where sharded draws run (with --workers; "
                          "thread default, process for multi-core; output "
                          "is identical, and ignored on serial runs)")
    generate.set_defaults(func=_cmd_generate)

    dataset = sub.add_parser("dataset", help="emit a built-in synthetic set")
    dataset.add_argument("name", help="S1-S5, R1-R5, C1-C5 or JP")
    dataset.add_argument("--count", type=int, default=1000)
    dataset.add_argument("--seed", type=int, default=0)
    dataset.set_defaults(func=_cmd_dataset)

    scan = sub.add_parser("scan", help="run the scanning experiment")
    scan.add_argument("name", help="S1-S5, R1-R5 or JP")
    scan.add_argument("--train", type=int, default=1000)
    scan.add_argument("--count", type=int, default=10_000)
    scan.add_argument("--seed", type=int, default=0)
    scan.add_argument("--workers", type=int, default=0,
                      help="shard generation and oracle scoring across N "
                      "worker threads (0 = serial)")
    scan.add_argument("--backend", choices=BACKEND_CHOICES, default=None,
                      help="exclusion-store layout (default: memory; "
                      "results are identical for every backend)")
    scan.add_argument("--exec-backend", choices=EXEC_BACKEND_CHOICES,
                      default=None,
                      help="where sharded draws run (with --workers; "
                      "thread default, process for multi-core; results "
                      "are identical, and ignored on serial runs)")
    scan.set_defaults(func=_cmd_scan)

    mi = sub.add_parser("mi", help="mutual-information heat map")
    mi.add_argument("file", help="address file, '-' for stdin")
    mi.add_argument("--width", type=int, default=32)
    mi.set_defaults(func=_cmd_mi)

    compare = sub.add_parser("compare", help="compare two snapshots")
    compare.add_argument("before", help="earlier address file")
    compare.add_argument("after", help="later address file")
    compare.add_argument("--width", type=int, default=32)
    compare.set_defaults(func=_cmd_compare)

    report = sub.add_parser("report", help="full composed analysis report")
    report.add_argument("file", help="address file, '-' for stdin")
    report.add_argument("--width", type=int, default=32)
    report.add_argument("--count", type=int, default=10,
                        help="candidate targets to append")
    report.add_argument("--seed", type=int, default=0)
    report.set_defaults(func=_cmd_report)

    serve = sub.add_parser(
        "serve",
        help="run a HitlistService over a seed file (line protocol on "
        "stdin, or a measured synthetic load with --requests)",
    )
    serve.add_argument("file", help="training address file, '-' for stdin")
    serve.add_argument("--name", default=None,
                       help="registry name for the model (default: the file)")
    serve.add_argument("--width", type=int, default=32)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--count", type=int, default=1000,
                       help="rows per generate request (synthetic mode)")
    serve.add_argument("--requests", type=int, default=0,
                       help="run a synthetic load of N generate requests "
                       "and print requests/s + p50/p99 (0 = line protocol)")
    serve.add_argument("--clients", type=int, default=4,
                       help="concurrent client threads in synthetic mode")
    serve.add_argument("--workers", type=int, default=0,
                       help="shard each draw across N worker threads")
    serve.add_argument("--backend", choices=BACKEND_CHOICES, default=None,
                       help="exclusion-store layout for served sessions")
    serve.add_argument("--exec-backend", choices=EXEC_BACKEND_CHOICES,
                       default=None,
                       help="where each session's sharded draws run (with "
                       "--workers; thread default, process for multi-core)")
    serve.add_argument("--service-workers", type=int, default=2,
                       help="service worker threads draining the queue")
    serve.add_argument("--max-pending", type=int, default=64,
                       help="bounded work queue depth (backpressure knob)")
    serve.add_argument("--checkpoint-dir", default=None,
                       help="restore client streams checkpointed here on "
                       "startup and snapshot them on exit (plus the "
                       "'checkpoint' protocol verb on demand); resumed "
                       "streams continue bit-identically")
    serve.set_defaults(func=_cmd_serve)

    ingest = sub.add_parser(
        "ingest",
        help="replay a time-sliced feed through the streaming-ingest "
        "pipeline (drift-triggered refits roll into live streams)",
    )
    ingest.add_argument("name", help="S1-S5, R1-R5, C1-C5 or JP")
    ingest.add_argument("--snapshots", type=int, default=4,
                        help="snapshots in the simulated feed (the first "
                        "trains the model)")
    ingest.add_argument("--sample-size", type=int, default=800,
                        help="rows per snapshot")
    ingest.add_argument("--batches", type=int, default=4,
                        help="ingest batches per snapshot")
    ingest.add_argument("--churn", type=float, default=0.3,
                        help="fraction of each snapshot resampled fresh")
    ingest.add_argument("--renumber-at", type=int, default=None,
                        help="inject a renumbering event at this snapshot "
                        "index (default: none)")
    ingest.add_argument("--threshold", type=float, default=0.15,
                        help="drift score that triggers a refit")
    ingest.add_argument("--min-refit-rows", type=int, default=1,
                        help="pending rows required before a refit can fire")
    ingest.add_argument("--count", type=int, default=200,
                        help="rows drawn on the monitor stream before and "
                        "after the feed")
    ingest.add_argument("--seed", type=int, default=0)
    ingest.add_argument("--workers", type=int, default=0,
                        help="shard monitor draws across N worker threads")
    ingest.add_argument("--backend", choices=BACKEND_CHOICES, default=None,
                        help="exclusion-store layout for the monitor stream")
    ingest.add_argument("--exec-backend", choices=EXEC_BACKEND_CHOICES,
                        default=None,
                        help="where the monitor stream's sharded draws run "
                        "(with --workers)")
    ingest.add_argument("--capacity", type=int, default=0,
                        help="capacity cap of the monitor stream (0 = "
                        "uncapped)")
    ingest.add_argument("--checkpoint", default=None,
                        help="write the pipeline's resumable state here "
                        "after every batch (atomic; a killed run resumes "
                        "with --resume)")
    ingest.add_argument("--resume", default=None,
                        help="resume a killed run from this checkpoint "
                        "file: already-ingested batches of the "
                        "deterministic feed are skipped, the rest "
                        "continue bit-identically")
    ingest.set_defaults(func=_cmd_ingest)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
