"""Command-line interface: ``entropy-ip`` / ``python -m repro``.

Subcommands:

- ``analyze``  — read addresses from a file (or stdin), print the
  entropy/ACR plot, segmentation, mining table and BN structure;
- ``generate`` — fit on a file of addresses and emit candidate targets;
- ``dataset``  — emit one of the built-in synthetic datasets;
- ``scan``     — run the §5.5 scanning experiment on a built-in network;
- ``mi``       — pairwise nybble mutual-information heat map (§6);
- ``compare``  — temporal comparison of two address files (§6);
- ``report``   — full composed analysis report (the §1 "web page").
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro.core.pipeline import EntropyIP
from repro.datasets.networks import build_network
from repro.ipv6.address import addresses_from_text
from repro.scan.evaluate import scan_experiment
from repro.viz.figures import (
    render_acr_entropy_plot,
    render_bn_graph,
    render_mining_table,
)


def _read_addresses(path: str) -> List[str]:
    stream = sys.stdin if path == "-" else open(path, "r", encoding="utf-8")
    try:
        return [a.hex32() for a in addresses_from_text(stream)]
    finally:
        if stream is not sys.stdin:
            stream.close()


def _cmd_analyze(args: argparse.Namespace) -> int:
    addresses = _read_addresses(args.file)
    analysis = EntropyIP.fit(addresses, width=args.width)
    print(render_acr_entropy_plot(analysis, title=f"Entropy/IP: {args.file}"))
    print()
    print(render_mining_table(analysis))
    print()
    print(render_bn_graph(analysis))
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    addresses = _read_addresses(args.file)
    analysis = EntropyIP.fit(addresses, width=args.width)
    rng = np.random.default_rng(args.seed)
    for address in analysis.generate_addresses(
        args.count, rng, workers=args.workers or None
    ):
        print(address.compressed())
    return 0


def _cmd_dataset(args: argparse.Namespace) -> int:
    network = build_network(args.name)
    sample = network.sample(args.count, seed=args.seed)
    for address in sample.addresses():
        print(address.compressed())
    return 0


def _cmd_scan(args: argparse.Namespace) -> int:
    network = build_network(args.name)
    result = scan_experiment(
        network,
        train_size=args.train,
        n_candidates=args.count,
        seed=args.seed,
        workers=args.workers or None,
    )
    print(result.row())
    return 0


def _cmd_mi(args: argparse.Namespace) -> int:
    from repro.ipv6.sets import AddressSet
    from repro.stats.mutual_information import top_dependent_pairs
    from repro.viz.figures import render_mi_heatmap

    addresses = _read_addresses(args.file)
    address_set = AddressSet.from_strings(addresses, width=args.width)
    print(render_mi_heatmap(address_set))
    pairs = top_dependent_pairs(address_set, limit=10)
    if pairs:
        print("\nstrongest non-adjacent dependencies (1-indexed nybbles):")
        for i, j, nmi in pairs:
            print(f"  nybble {i:>2} <-> nybble {j:>2}   NMI={nmi:.2f}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.core.temporal import compare_snapshots
    from repro.viz.figures import render_snapshot_delta

    before = EntropyIP.fit(_read_addresses(args.before), width=args.width)
    after = EntropyIP.fit(_read_addresses(args.after), width=args.width)
    delta = compare_snapshots(before, after)
    print(render_snapshot_delta(delta))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.core.report import full_report

    analysis = EntropyIP.fit(_read_addresses(args.file), width=args.width)
    rng = np.random.default_rng(args.seed)
    print(full_report(analysis, title=f"Entropy/IP report: {args.file}",
                      n_candidates=args.count, rng=rng))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="entropy-ip",
        description="Entropy/IP: uncover structure in IPv6 address sets "
        "(IMC 2016 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    analyze = sub.add_parser("analyze", help="analyze an address file")
    analyze.add_argument("file", help="address file, '-' for stdin")
    analyze.add_argument("--width", type=int, default=32,
                         help="nybbles to analyze (16 = /64 prefix mode)")
    analyze.set_defaults(func=_cmd_analyze)

    generate = sub.add_parser("generate", help="generate candidate targets")
    generate.add_argument("file", help="training address file, '-' for stdin")
    generate.add_argument("--count", type=int, default=1000)
    generate.add_argument("--width", type=int, default=32)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--workers", type=int, default=0,
                          help="shard generation across N worker threads "
                          "(0 = serial; output depends only on the seed)")
    generate.set_defaults(func=_cmd_generate)

    dataset = sub.add_parser("dataset", help="emit a built-in synthetic set")
    dataset.add_argument("name", help="S1-S5, R1-R5, C1-C5 or JP")
    dataset.add_argument("--count", type=int, default=1000)
    dataset.add_argument("--seed", type=int, default=0)
    dataset.set_defaults(func=_cmd_dataset)

    scan = sub.add_parser("scan", help="run the scanning experiment")
    scan.add_argument("name", help="S1-S5, R1-R5 or JP")
    scan.add_argument("--train", type=int, default=1000)
    scan.add_argument("--count", type=int, default=10_000)
    scan.add_argument("--seed", type=int, default=0)
    scan.add_argument("--workers", type=int, default=0,
                      help="shard generation and oracle scoring across N "
                      "worker threads (0 = serial)")
    scan.set_defaults(func=_cmd_scan)

    mi = sub.add_parser("mi", help="mutual-information heat map")
    mi.add_argument("file", help="address file, '-' for stdin")
    mi.add_argument("--width", type=int, default=32)
    mi.set_defaults(func=_cmd_mi)

    compare = sub.add_parser("compare", help="compare two snapshots")
    compare.add_argument("before", help="earlier address file")
    compare.add_argument("after", help="later address file")
    compare.add_argument("--width", type=int, default=32)
    compare.set_defaults(func=_cmd_compare)

    report = sub.add_parser("report", help="full composed analysis report")
    report.add_argument("file", help="address file, '-' for stdin")
    report.add_argument("--width", type=int, default=32)
    report.add_argument("--count", type=int, default=10,
                        help="candidate targets to append")
    report.add_argument("--seed", type=int, default=0)
    report.set_defaults(func=_cmd_report)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
