"""DBSCAN (Ester, Kriegel, Sander, Xu — KDD 1996), from scratch.

Density-based clustering: a point is a *core* point if at least
``min_samples`` points (including itself, counted with weights) lie
within distance ``eps`` of it; clusters are the connected components of
core points under the eps-neighborhood relation, plus any *border* points
within eps of a core point.  Everything else is noise.

This implementation supports:

- weighted points (a point with weight w contributes w samples to every
  neighborhood it belongs to) — the mining step clusters *distinct*
  segment values weighted by their frequencies instead of expanding
  multisets;
- a uniform-grid spatial index with cell size eps, so region queries only
  examine neighboring cells (expected near-linear behaviour for the low
  dimensional, 1-D/2-D, inputs used here).
"""

from __future__ import annotations

from itertools import product
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

#: Cluster label assigned to noise points.
NOISE = -1


class DBSCAN:
    """Reusable DBSCAN clusterer.

    >>> points = [[0.0], [0.1], [0.2], [9.0]]
    >>> DBSCAN(eps=0.5, min_samples=2).fit(points).labels.tolist()
    [0, 0, 0, -1]
    """

    def __init__(self, eps: float, min_samples: float):
        if eps <= 0:
            raise ValueError("eps must be positive")
        if min_samples <= 0:
            raise ValueError("min_samples must be positive")
        self.eps = float(eps)
        self.min_samples = float(min_samples)
        self.labels: Optional[np.ndarray] = None

    def fit(
        self, points: Sequence[Sequence[float]], weights: Sequence[float] = None
    ) -> "DBSCAN":
        """Cluster ``points``; results land in :attr:`labels`."""
        array = np.asarray(points, dtype=np.float64)
        if array.ndim == 1:
            array = array.reshape(-1, 1)
        n = array.shape[0]
        if weights is None:
            weight_array = np.ones(n, dtype=np.float64)
        else:
            weight_array = np.asarray(weights, dtype=np.float64)
            if weight_array.shape != (n,):
                raise ValueError("weights must match number of points")
            if np.any(weight_array < 0):
                raise ValueError("weights must be non-negative")
        self.labels = _dbscan(array, weight_array, self.eps, self.min_samples)
        return self

    def clusters(self) -> Dict[int, List[int]]:
        """Cluster label → member point indices (noise excluded)."""
        if self.labels is None:
            raise RuntimeError("fit() has not been called")
        result: Dict[int, List[int]] = {}
        for index, label in enumerate(self.labels):
            if label != NOISE:
                result.setdefault(int(label), []).append(index)
        return result


def dbscan_labels(
    points: Sequence[Sequence[float]],
    eps: float,
    min_samples: float,
    weights: Sequence[float] = None,
) -> np.ndarray:
    """Functional one-shot interface to :class:`DBSCAN`."""
    return DBSCAN(eps, min_samples).fit(points, weights).labels


class _GridIndex:
    """Uniform-grid spatial index with cell size eps.

    All points within eps of a query point lie in the query's cell or one
    of its immediate neighbors, so a region query examines at most 3^d
    cells.
    """

    def __init__(self, points: np.ndarray, eps: float):
        self._points = points
        self._eps = eps
        self._cells: Dict[Tuple[int, ...], List[int]] = {}
        keys = np.floor(points / eps).astype(np.int64)
        for index, key in enumerate(map(tuple, keys)):
            self._cells.setdefault(key, []).append(index)
        dims = points.shape[1]
        self._offsets = list(product((-1, 0, 1), repeat=dims))

    def neighbors(self, index: int) -> List[int]:
        """Indices of all points within eps of point ``index`` (incl. it)."""
        point = self._points[index]
        key = tuple(np.floor(point / self._eps).astype(np.int64))
        candidates: List[int] = []
        for offset in self._offsets:
            cell = tuple(k + o for k, o in zip(key, offset))
            candidates.extend(self._cells.get(cell, ()))
        if not candidates:
            return []
        candidate_array = np.asarray(candidates, dtype=np.intp)
        deltas = self._points[candidate_array] - point
        distances = np.sqrt((deltas * deltas).sum(axis=1))
        within = candidate_array[distances <= self._eps]
        return within.tolist()


def _dbscan(
    points: np.ndarray, weights: np.ndarray, eps: float, min_samples: float
) -> np.ndarray:
    n = points.shape[0]
    labels = np.full(n, NOISE, dtype=np.int64)
    if n == 0:
        return labels
    index = _GridIndex(points, eps)

    neighbor_cache: Dict[int, List[int]] = {}

    def region(i: int) -> List[int]:
        if i not in neighbor_cache:
            neighbor_cache[i] = index.neighbors(i)
        return neighbor_cache[i]

    def is_core(i: int) -> bool:
        return float(weights[np.asarray(region(i), dtype=np.intp)].sum()) >= min_samples

    cluster_id = 0
    visited = np.zeros(n, dtype=bool)
    for start in range(n):
        if visited[start]:
            continue
        visited[start] = True
        if not is_core(start):
            continue  # may become a border point of a later cluster
        labels[start] = cluster_id
        frontier = [i for i in region(start) if i != start]
        while frontier:
            current = frontier.pop()
            if labels[current] == NOISE:
                labels[current] = cluster_id  # border or core, joins cluster
            if visited[current]:
                continue
            visited[current] = True
            if is_core(current):
                for neighbor in region(current):
                    if labels[neighbor] == NOISE or not visited[neighbor]:
                        frontier.append(neighbor)
        cluster_id += 1
    return labels
