"""DBSCAN (Ester, Kriegel, Sander, Xu — KDD 1996), from scratch.

Density-based clustering: a point is a *core* point if at least
``min_samples`` points (including itself, counted with weights) lie
within distance ``eps`` of it; clusters are the connected components of
core points under the eps-neighborhood relation, plus any *border* points
within eps of a core point.  Everything else is noise.

This implementation supports:

- weighted points (a point with weight w contributes w samples to every
  neighborhood it belongs to) — the mining step clusters *distinct*
  segment values weighted by their frequencies instead of expanding
  multisets;
- two interchangeable engines behind one :class:`DBSCAN` facade:

  * ``"vector"`` — the array-native engine segment mining runs on.
    Points are ordered by their first coordinate; two ``searchsorted``
    calls per point delimit a *candidate band* (using an
    over-approximated radius, so no true neighbor can fall outside),
    the exact distance test runs once over the flattened band pairs,
    neighborhood weights come from one ``bincount``, core components
    from a sparse connected-components pass, and border points join the
    lowest-numbered adjacent cluster.  No per-point Python region
    queries at all.
  * ``"grid"`` — the original scan: a uniform-grid spatial index with
    cell size eps and an explicit expansion frontier.  Retained both as
    the reference implementation (the scalar fit path of
    ``EntropyIP._fit_reference`` runs it) and as the fallback for
    inputs the banded engine cannot handle bit-exactly (non-integral
    weights, or coordinates so large that the band over-approximation
    slack would round away — see :func:`_banded_is_exact`).

Both engines produce **identical labels**, not merely isomorphic
clusterings: distances use the same ``sqrt((deltas**2).sum())``
arithmetic, integer-valued weights make neighborhood sums
order-independent, cluster ids number components by their smallest
original core index (the order the scan discovers them), and a border
point between two clusters joins the lower-numbered one (the one whose
expansion reaches it first).  ``tests/cluster`` and the property suite
assert this parity on random inputs.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

#: Cluster label assigned to noise points.
NOISE = -1

#: Relative over-approximation applied to the banded engine's candidate
#: radius.  Any point passing the exact test ``sqrt((dx² + ... )) <= eps``
#: has ``|dx| <= eps * (1 + 2**-50)``, so widening the candidate window
#: by this much guarantees the band is a superset of every true
#: neighborhood (provided the slack survives coordinate rounding, which
#: :func:`_banded_is_exact` checks).
_BAND_SLACK = 1e-9

#: Candidate-pair budget of the banded engine (~30M pairs ≈ a few
#: hundred MB transient); denser inputs fall back to the grid scan.
_MAX_BAND_PAIRS = 30_000_000


class DBSCAN:
    """Reusable DBSCAN clusterer.

    ``algorithm`` selects the engine: ``"auto"`` (default) runs the
    vectorized banded engine whenever it is provably label-exact for
    the input and the grid scan otherwise; ``"vector"`` / ``"grid"``
    force one engine.

    >>> points = [[0.0], [0.1], [0.2], [9.0]]
    >>> DBSCAN(eps=0.5, min_samples=2).fit(points).labels.tolist()
    [0, 0, 0, -1]
    """

    def __init__(self, eps: float, min_samples: float, algorithm: str = "auto"):
        if eps <= 0:
            raise ValueError("eps must be positive")
        if min_samples <= 0:
            raise ValueError("min_samples must be positive")
        if algorithm not in ("auto", "vector", "grid"):
            raise ValueError(f"unknown algorithm: {algorithm!r}")
        self.eps = float(eps)
        self.min_samples = float(min_samples)
        self.algorithm = algorithm
        self.labels: Optional[np.ndarray] = None

    def fit(
        self, points: Sequence[Sequence[float]], weights: Sequence[float] = None
    ) -> "DBSCAN":
        """Cluster ``points``; results land in :attr:`labels`."""
        array = np.asarray(points, dtype=np.float64)
        if array.ndim == 1:
            array = array.reshape(-1, 1)
        n = array.shape[0]
        if weights is None:
            weight_array = np.ones(n, dtype=np.float64)
        else:
            weight_array = np.asarray(weights, dtype=np.float64)
            if weight_array.shape != (n,):
                raise ValueError("weights must match number of points")
            if np.any(weight_array < 0):
                raise ValueError("weights must be non-negative")
        if self.algorithm == "grid" or (
            self.algorithm == "auto"
            and not _banded_is_exact(array, weight_array, self.eps)
        ):
            engine = _dbscan_grid
        else:
            engine = _dbscan_banded
        self.labels = engine(array, weight_array, self.eps, self.min_samples)
        return self

    def clusters(self) -> Dict[int, List[int]]:
        """Cluster label → member point indices (noise excluded)."""
        if self.labels is None:
            raise RuntimeError("fit() has not been called")
        result: Dict[int, List[int]] = {}
        for index, label in enumerate(self.labels):
            if label != NOISE:
                result.setdefault(int(label), []).append(index)
        return result


def dbscan_labels(
    points: Sequence[Sequence[float]],
    eps: float,
    min_samples: float,
    weights: Sequence[float] = None,
) -> np.ndarray:
    """Functional one-shot interface to :class:`DBSCAN`."""
    return DBSCAN(eps, min_samples).fit(points, weights).labels


# ----------------------------------------------------------------------
# vectorized banded engine
# ----------------------------------------------------------------------


def _banded_is_exact(
    points: np.ndarray, weights: np.ndarray, eps: float
) -> bool:
    """True when the banded engine is label-identical to the grid scan.

    Two conditions: all weights integral and summing inside the float64
    exact-integer range (so neighborhood sums are order-independent),
    and the band slack ``eps * _BAND_SLACK`` strictly dominating the
    rounding of ``x ± radius`` at the coordinate magnitudes present (so
    the candidate window cannot round past a true neighbor).  Both hold
    for every input segment mining produces.
    """
    if points.shape[0] == 0:
        return True
    if not np.all(weights == np.floor(weights)):
        return False
    if weights.sum() >= 2.0**53:
        return False
    x = points[:, 0]
    max_magnitude = float(np.abs(x).max()) + eps
    return eps * _BAND_SLACK > 8.0 * np.spacing(max_magnitude)


def _dbscan_banded(
    points: np.ndarray, weights: np.ndarray, eps: float, min_samples: float
) -> np.ndarray:
    """Vectorized DBSCAN over first-coordinate candidate bands.

    Label-identical to :func:`_dbscan_grid` for inputs passing
    :func:`_banded_is_exact` (see module docstring for why the
    tie-breaking rules coincide).
    """
    n = points.shape[0]
    labels = np.full(n, NOISE, dtype=np.int64)
    if n == 0:
        return labels
    order = np.argsort(points[:, 0], kind="stable")
    sorted_points = points[order]
    x = sorted_points[:, 0]
    radius = eps * (1.0 + _BAND_SLACK)
    lo = np.searchsorted(x, x - radius, side="left")
    hi = np.searchsorted(x, x + radius, side="right")
    band_widths = hi - lo
    total = int(band_widths.sum())
    if total > _MAX_BAND_PAIRS:
        # Dense bands would materialize too many candidate pairs; the
        # grid scan handles this regime in bounded memory.
        return _dbscan_grid(points, weights, eps, min_samples)
    rows = np.repeat(np.arange(n, dtype=np.int64), band_widths)
    starts = np.zeros(n, dtype=np.int64)
    np.cumsum(band_widths[:-1], out=starts[1:])
    cols = np.arange(total, dtype=np.int64) - np.repeat(starts - lo, band_widths)
    # The exact neighbor test, same arithmetic as the grid scan.
    deltas = sorted_points[cols] - sorted_points[rows]
    within = np.sqrt((deltas * deltas).sum(axis=1)) <= eps
    rows, cols = rows[within], cols[within]
    sorted_weights = weights[order]
    neighborhood_weight = np.bincount(
        rows, weights=sorted_weights[cols], minlength=n
    )
    core = neighborhood_weight >= min_samples
    core_indices = np.nonzero(core)[0]
    if core_indices.size == 0:
        return labels
    if points.shape[1] == 1:
        # 1-D fast path: cores are sorted by value, and core i connects
        # to core j > i exactly when every consecutive gap between them
        # passes the eps test (distance is monotone along the line), so
        # components split at consecutive-core gaps exceeding eps.
        core_x = sorted_points[core_indices]
        gap = core_x[1:] - core_x[:-1]
        broken = np.sqrt((gap * gap).sum(axis=1)) > eps
        component = np.concatenate([[0], np.cumsum(broken)])
    else:
        # Components of the core-core adjacency (sparse, C pass).
        from scipy.sparse import coo_matrix
        from scipy.sparse.csgraph import connected_components

        core_pair = core[rows] & core[cols]
        core_rank = np.cumsum(core) - 1  # sorted core index → 0..k-1
        graph = coo_matrix(
            (
                np.ones(int(core_pair.sum()), dtype=np.int8),
                (core_rank[rows[core_pair]], core_rank[cols[core_pair]]),
            ),
            shape=(core_indices.size, core_indices.size),
        )
        _, component = connected_components(graph, directed=False)
    # Renumber components by their smallest ORIGINAL core index — the
    # order in which the scanning engine discovers clusters.
    first_original = np.full(int(component.max()) + 1, n, dtype=np.int64)
    np.minimum.at(first_original, component, order[core_indices])
    component = np.argsort(np.argsort(first_original, kind="stable"))[component]
    core_labels = np.full(n, np.iinfo(np.int64).max, dtype=np.int64)
    core_labels[core_indices] = component
    sorted_labels = np.full(n, NOISE, dtype=np.int64)
    sorted_labels[core_indices] = component
    # Border points: non-core within eps of >= 1 core join the
    # lowest-numbered such cluster (whose expansion claims them first).
    border_pair = ~core[rows] & core[cols]
    if border_pair.any():
        border_best = np.full(n, np.iinfo(np.int64).max, dtype=np.int64)
        np.minimum.at(
            border_best, rows[border_pair], core_labels[cols[border_pair]]
        )
        claimed = border_best < np.iinfo(np.int64).max
        sorted_labels[claimed] = border_best[claimed]
    labels[order] = sorted_labels
    return labels


# ----------------------------------------------------------------------
# grid-scan engine (reference + fallback)
# ----------------------------------------------------------------------


class _GridIndex:
    """Uniform-grid spatial index with cell size eps.

    All points within eps of a query point lie in the query's cell or one
    of its immediate neighbors, so a region query examines at most 3^d
    cells.
    """

    def __init__(self, points: np.ndarray, eps: float):
        self._points = points
        self._eps = eps
        self._cells: Dict[Tuple[int, ...], List[int]] = {}
        keys = np.floor(points / eps).astype(np.int64)
        for index, key in enumerate(map(tuple, keys)):
            self._cells.setdefault(key, []).append(index)
        dims = points.shape[1]
        self._offsets = list(product((-1, 0, 1), repeat=dims))

    def neighbors(self, index: int) -> List[int]:
        """Indices of all points within eps of point ``index`` (incl. it)."""
        point = self._points[index]
        key = tuple(np.floor(point / self._eps).astype(np.int64))
        candidates: List[int] = []
        for offset in self._offsets:
            cell = tuple(k + o for k, o in zip(key, offset))
            candidates.extend(self._cells.get(cell, ()))
        if not candidates:
            return []
        candidate_array = np.asarray(candidates, dtype=np.intp)
        deltas = self._points[candidate_array] - point
        distances = np.sqrt((deltas * deltas).sum(axis=1))
        within = candidate_array[distances <= self._eps]
        return within.tolist()


def _dbscan_grid(
    points: np.ndarray, weights: np.ndarray, eps: float, min_samples: float
) -> np.ndarray:
    """The original frontier-expansion scan over a grid index."""
    n = points.shape[0]
    labels = np.full(n, NOISE, dtype=np.int64)
    if n == 0:
        return labels
    index = _GridIndex(points, eps)

    neighbor_cache: Dict[int, List[int]] = {}

    def region(i: int) -> List[int]:
        if i not in neighbor_cache:
            neighbor_cache[i] = index.neighbors(i)
        return neighbor_cache[i]

    def is_core(i: int) -> bool:
        return float(weights[np.asarray(region(i), dtype=np.intp)].sum()) >= min_samples

    cluster_id = 0
    visited = np.zeros(n, dtype=bool)
    for start in range(n):
        if visited[start]:
            continue
        visited[start] = True
        if not is_core(start):
            continue  # may become a border point of a later cluster
        labels[start] = cluster_id
        frontier = [i for i in region(start) if i != start]
        while frontier:
            current = frontier.pop()
            if labels[current] == NOISE:
                labels[current] = cluster_id  # border or core, joins cluster
            if visited[current]:
                continue
            visited[current] = True
            if is_core(current):
                for neighbor in region(current):
                    if labels[neighbor] == NOISE or not visited[neighbor]:
                        frontier.append(neighbor)
        cluster_id += 1
    return labels


#: Backwards-compatible alias for the original engine entry point.
_dbscan = _dbscan_grid
