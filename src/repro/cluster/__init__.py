"""Clustering substrate: DBSCAN and interval utilities.

The paper's segment-mining step (Section 4.3) runs DBSCAN [Ester et al.
1996] twice per segment: once over the value space to find dense ranges,
and once over the histogram (value, count) plane to find ranges that are
uniformly distributed and relatively continuous.  This package implements
DBSCAN from scratch with weighted points and a grid spatial index.
"""

from repro.cluster.dbscan import DBSCAN, NOISE, dbscan_labels
from repro.cluster.intervals import Interval, merge_intervals, subtract_intervals

__all__ = [
    "DBSCAN",
    "Interval",
    "NOISE",
    "dbscan_labels",
    "merge_intervals",
    "subtract_intervals",
]
