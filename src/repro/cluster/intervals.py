"""Closed integer intervals, used to express mined value ranges.

Segment mining (Section 4.3) emits *ranges* of segment values, e.g.
``G11 = 0000000000001-0000000000af0`` in Table 3.  This module provides a
small interval algebra for building, merging and subtracting such ranges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True, order=True)
class Interval:
    """A closed integer interval [low, high]."""

    low: int
    high: int

    def __post_init__(self):
        if self.low > self.high:
            raise ValueError(f"empty interval: [{self.low}, {self.high}]")

    def __contains__(self, value: int) -> bool:
        return self.low <= value <= self.high

    def __len__(self) -> int:
        return self.high - self.low + 1

    def overlaps(self, other: "Interval") -> bool:
        """True if the two intervals share at least one integer."""
        return self.low <= other.high and other.low <= self.high

    def touches(self, other: "Interval") -> bool:
        """True if the intervals overlap or are adjacent."""
        return self.low <= other.high + 1 and other.low <= self.high + 1

    def union(self, other: "Interval") -> "Interval":
        """Smallest interval covering both (must touch)."""
        if not self.touches(other):
            raise ValueError(f"cannot union disjoint intervals {self} and {other}")
        return Interval(min(self.low, other.low), max(self.high, other.high))

    def intersect(self, other: "Interval") -> "Interval":
        """The overlapping part (must overlap)."""
        if not self.overlaps(other):
            raise ValueError(f"intervals {self} and {other} do not overlap")
        return Interval(max(self.low, other.low), min(self.high, other.high))


def merge_intervals(intervals: Iterable[Interval]) -> List[Interval]:
    """Coalesce overlapping/adjacent intervals into a sorted minimal set."""
    ordered = sorted(intervals)
    merged: List[Interval] = []
    for interval in ordered:
        if merged and merged[-1].touches(interval):
            merged[-1] = merged[-1].union(interval)
        else:
            merged.append(interval)
    return merged


def subtract_intervals(
    universe: Interval, holes: Iterable[Interval]
) -> List[Interval]:
    """Parts of ``universe`` not covered by any of ``holes``."""
    remaining: List[Interval] = [universe]
    for hole in merge_intervals(holes):
        next_remaining: List[Interval] = []
        for part in remaining:
            if not part.overlaps(hole):
                next_remaining.append(part)
                continue
            if part.low < hole.low:
                next_remaining.append(Interval(part.low, hole.low - 1))
            if hole.high < part.high:
                next_remaining.append(Interval(hole.high + 1, part.high))
        remaining = next_remaining
    return remaining


def covered_count(intervals: Sequence[Interval]) -> int:
    """Total number of integers covered by the (merged) intervals."""
    return sum(len(i) for i in merge_intervals(intervals))


def clusters_to_intervals(
    values: Sequence[int], labels: Sequence[int]
) -> List[Tuple[int, Interval]]:
    """Convert DBSCAN output over scalar values into labeled intervals.

    Returns (label, interval) pairs sorted by interval; noise (-1) is
    skipped.  Accepts plain sequences or numpy arrays; integer-dtype
    arrays are grouped vectorized instead of with a per-point loop.
    (Plain Python lists with entries above 2**63 coerce to float64
    under ``np.asarray`` — only a genuine integer dtype is trusted, so
    such inputs keep the exact scalar path.)
    """
    value_array = np.asarray(values)
    label_array = np.asarray(labels)
    if value_array.dtype.kind in "iu" and value_array.size:
        clustered = label_array >= 0
        cluster_labels = label_array[clustered]
        cluster_values = value_array[clustered]
        pairs = []
        for label in np.unique(cluster_labels):
            member_values = cluster_values[cluster_labels == label]
            pairs.append(
                (
                    int(label),
                    Interval(
                        int(member_values.min()), int(member_values.max())
                    ),
                )
            )
        pairs.sort(key=lambda pair: pair[1])
        return pairs
    spans: dict = {}
    for value, label in zip(values, labels):
        if label < 0:
            continue
        value = int(value)
        if label in spans:
            low, high = spans[label]
            spans[label] = (min(low, value), max(high, value))
        else:
            spans[label] = (value, value)
    pairs = [(label, Interval(low, high)) for label, (low, high) in spans.items()]
    pairs.sort(key=lambda pair: pair[1])
    return pairs
