"""Deterministic fault injection for the exec/serve/ingest hot paths.

The fault-tolerance layer (mid-run worker recovery, request deadlines,
checkpoint/restore) is only trustworthy if its failure paths can be
exercised *deterministically* — "kill the process worker on shard 3 of
call 2" must mean exactly that run after run, so a recovered run can
be asserted bit-identical to the fault-free one.  This module provides
that: named **fault sites** woven into the hot paths, and a
declarative :class:`FaultPlan` that arms specific faults at specific
sites.

Sites currently woven in:

========================  ====================================================
``pool.dispatch``         parent side, once per task submitted by
                          :meth:`repro.exec.pool.WorkerPool.map` on a
                          parallel path (selector = Nth submission)
``pool.shard``            inside the shard task (worker side, for the
                          process backend inside the worker *process*);
                          selector = Nth hit or ``call.shard``
``service.worker``        a :class:`~repro.serve.service.HitlistService`
                          worker thread, just before executing a request
``ingest.refit``          start of :meth:`IngestPipeline.refit`
``checkpoint.save``       just before a checkpoint file is committed
========================  ====================================================

Cost when disarmed is one module-global load and a pointer comparison
per site — no allocation, no locking, no string formatting — so the
sites stay in the hot paths permanently (the ``fault_overhead``
benchmark stage holds this to within noise).

Plans
-----
A plan is a semicolon-separated list of rules, each
``site@selector:action``:

- ``selector`` is either ``N`` (the Nth time that site fires,
  1-based, counted per process) or ``C.S`` (for per-shard sites:
  call ``C``, shard ``S``, both 0-based — deterministic regardless of
  which worker runs the shard).
- ``action`` is ``kill`` (``os._exit(1)`` — simulates a crashed
  process worker; only meaningful at worker-side sites) or
  ``raise=ExcName`` with ``ExcName`` from :data:`INJECTABLE_ERRORS`.

Each rule fires **once**.  Examples::

    pool.shard@2.3:kill             # kill the worker on shard 3 of call 2
    pool.dispatch@5:raise=OSError   # raise OSError on the 5th dispatch
    service.worker@1:raise=RuntimeError

Arm a plan for a block of code::

    with FaultPlan.parse("pool.shard@0.1:kill").armed():
        model.generate_set(n, rng, workers=4, exec_backend="process")

or for a whole process tree via ``REPRO_FAULT_PLAN`` in the
environment — child worker processes re-read the variable on import,
and :meth:`FaultPlan.armed` exports it too, so a forkserver child
spawned mid-block still sees the plan.
"""

from __future__ import annotations

import os
import threading
from typing import Dict, List, Optional

from repro.errors import FaultPlanError

#: Environment variable holding a plan string; parsed at import time in
#: every process (parent and pool workers alike).
PLAN_ENV = "REPRO_FAULT_PLAN"

#: Environment variable holding the plan's cross-process scoreboard
#: directory.  A rule must fire exactly once across the whole process
#: tree — a ``kill`` rule that re-armed in every freshly forked
#: replacement worker would kill the re-dispatched shard forever —
#: but plan objects are per-process, so the "already fired" latch
#: lives as one file per rule in this directory, touched *before* the
#: fault acts.  :meth:`FaultPlan.armed` creates it automatically.
SCOREBOARD_ENV = "REPRO_FAULT_BOARD"

#: Exceptions a ``raise=`` action may name.  A deliberately small
#: allowlist of the error types the recovery paths are written against
#: — injecting arbitrary exceptions would test nothing real.
INJECTABLE_ERRORS: Dict[str, type] = {
    "OSError": OSError,
    "RuntimeError": RuntimeError,
    "ValueError": ValueError,
    "MemoryError": MemoryError,
    "KeyboardInterrupt": KeyboardInterrupt,
    "SystemExit": SystemExit,
}


class FaultRule:
    """One armed fault: fire ``action`` at ``site`` when the selector
    matches.  Plain data plus a ``fired`` latch; matching lives in
    :meth:`FaultPlan._select`."""

    __slots__ = ("site", "action", "exc_name", "nth", "call", "shard", "fired")

    def __init__(
        self,
        site: str,
        action: str,
        exc_name: Optional[str] = None,
        nth: Optional[int] = None,
        call: Optional[int] = None,
        shard: Optional[int] = None,
    ):
        self.site = site
        self.action = action
        self.exc_name = exc_name
        self.nth = nth
        self.call = call
        self.shard = shard
        self.fired = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sel = f"{self.call}.{self.shard}" if self.nth is None else f"{self.nth}"
        act = self.action if self.exc_name is None else f"raise={self.exc_name}"
        return f"FaultRule({self.site}@{sel}:{act})"


class FaultPlan:
    """A parsed set of :class:`FaultRule`\\ s plus per-site hit
    counters.  Arm with :meth:`armed` (context manager) or by setting
    :data:`PLAN_ENV` before the target process imports this module."""

    def __init__(self, rules: List[FaultRule]):
        self.rules = rules
        self._hits: Dict[str, int] = {}
        self._lock = threading.Lock()
        self._text: Optional[str] = None
        #: Cross-process fired-latch directory (see SCOREBOARD_ENV).
        self._board: Optional[str] = None

    # -- construction --------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the ``site@selector:action[;...]`` grammar above."""
        rules: List[FaultRule] = []
        for chunk in text.split(";"):
            chunk = chunk.strip()
            if not chunk:
                continue
            try:
                head, action = chunk.split(":", 1)
                site, selector = head.split("@", 1)
            except ValueError:
                raise FaultPlanError(
                    f"fault rule {chunk!r} is not site@selector:action"
                ) from None
            site = site.strip()
            action = action.strip()
            exc_name = None
            if action.startswith("raise="):
                exc_name = action[len("raise="):]
                if exc_name not in INJECTABLE_ERRORS:
                    raise FaultPlanError(
                        f"fault rule {chunk!r} names {exc_name!r}, not one "
                        f"of {'/'.join(sorted(INJECTABLE_ERRORS))}"
                    )
                action = "raise"
            elif action != "kill":
                raise FaultPlanError(
                    f"fault rule {chunk!r} action must be 'kill' or "
                    f"'raise=ExcName'"
                )
            selector = selector.strip()
            try:
                if "." in selector:
                    call_s, shard_s = selector.split(".", 1)
                    rule = FaultRule(
                        site, action, exc_name,
                        call=int(call_s), shard=int(shard_s),
                    )
                else:
                    rule = FaultRule(site, action, exc_name, nth=int(selector))
            except ValueError:
                raise FaultPlanError(
                    f"fault rule {chunk!r} selector must be N or CALL.SHARD"
                ) from None
            rules.append(rule)
        if not rules:
            raise FaultPlanError(f"fault plan {text!r} contains no rules")
        plan = cls(rules)
        plan._text = text
        return plan

    # -- matching ------------------------------------------------------

    def _rule_fired(self, index: int) -> bool:
        rule = self.rules[index]
        if rule.fired:
            return True
        if self._board is not None and os.path.exists(
            os.path.join(self._board, str(index))
        ):
            rule.fired = True  # cache the cross-process latch locally
            return True
        return False

    def _mark_fired(self, index: int) -> None:
        self.rules[index].fired = True
        if self._board is not None:
            # Touch the latch *before* the fault acts: a kill that
            # exits this process must not leave the rule armed for the
            # replacement worker that re-runs the same shard.
            try:
                with open(os.path.join(self._board, str(index)), "w"):
                    pass
            except OSError:  # pragma: no cover - board dir removed
                pass

    def _select(
        self, site: str, call: Optional[int], shard: Optional[int]
    ) -> Optional[FaultRule]:
        with self._lock:
            hit = self._hits.get(site, 0) + 1
            self._hits[site] = hit
            for index, rule in enumerate(self.rules):
                if rule.site != site or self._rule_fired(index):
                    continue
                if rule.nth is not None:
                    if hit == rule.nth:
                        self._mark_fired(index)
                        return rule
                elif call is not None and shard is not None:
                    if call == rule.call and shard == rule.shard:
                        self._mark_fired(index)
                        return rule
        return None

    def hits(self, site: str) -> int:
        """How many times ``site`` has fired in this process."""
        with self._lock:
            return self._hits.get(site, 0)

    def fired(self) -> int:
        """How many rules have triggered — in this process or, with a
        scoreboard, anywhere in the process tree."""
        with self._lock:
            return sum(
                1 for index in range(len(self.rules))
                if self._rule_fired(index)
            )

    # -- arming --------------------------------------------------------

    def armed(self) -> "_ArmedPlan":
        """Context manager arming this plan process-wide (and exporting
        :data:`PLAN_ENV` so pool workers started inside the block
        inherit it)."""
        return _ArmedPlan(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan({self.rules!r})"


class _ArmedPlan:
    def __init__(self, plan: FaultPlan):
        self._plan = plan
        self._prev_plan: Optional[FaultPlan] = None
        self._prev_env: Dict[str, Optional[str]] = {}
        self._owns_board = False

    def __enter__(self) -> FaultPlan:
        global _PLAN
        import tempfile

        self._prev_plan = _PLAN
        self._prev_env = {
            PLAN_ENV: os.environ.get(PLAN_ENV),
            SCOREBOARD_ENV: os.environ.get(SCOREBOARD_ENV),
        }
        if self._plan._board is None:
            self._plan._board = tempfile.mkdtemp(prefix="repro-faults-")
            self._owns_board = True
        _PLAN = self._plan
        if self._plan._text is not None:
            os.environ[PLAN_ENV] = self._plan._text
        os.environ[SCOREBOARD_ENV] = self._plan._board
        return self._plan

    def __exit__(self, *exc_info) -> None:
        global _PLAN
        _PLAN = self._prev_plan
        for key, value in self._prev_env.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
        if self._owns_board:
            import shutil

            shutil.rmtree(self._plan._board, ignore_errors=True)
            self._plan._board = None
            self._owns_board = False


def _plan_from_env() -> Optional[FaultPlan]:
    text = os.environ.get(PLAN_ENV)
    if not text:
        return None
    plan = FaultPlan.parse(text)
    plan._board = os.environ.get(SCOREBOARD_ENV)
    return plan


#: The armed plan, or ``None`` (the common case).  Every fault site
#: reads this exactly once; ``None`` short-circuits before any other
#: work.  Initialized from the environment so worker processes —
#: forked, forkserver'd, or spawned — arm themselves on import.
_PLAN: Optional[FaultPlan] = _plan_from_env()


def active_plan() -> Optional[FaultPlan]:
    """The currently armed plan, if any (for counters/introspection)."""
    return _PLAN


def fault_point(
    site: str, call: Optional[int] = None, shard: Optional[int] = None
) -> None:
    """A named fault site.  No-op unless a plan is armed and one of its
    unfired rules matches this hit."""
    plan = _PLAN
    if plan is None:
        return
    rule = plan._select(site, call, shard)
    if rule is None:
        return
    if rule.action == "kill":
        # Simulate a crashed worker process: no cleanup, no exception
        # propagation — the parent sees BrokenProcessPool, exactly as
        # for a real segfault/OOM kill.
        os._exit(1)
    raise INJECTABLE_ERRORS[rule.exc_name](
        f"injected fault at {site} "
        f"({'hit ' + str(rule.nth) if rule.nth is not None else f'call {rule.call} shard {rule.shard}'})"
    )


__all__ = [
    "INJECTABLE_ERRORS",
    "PLAN_ENV",
    "SCOREBOARD_ENV",
    "FaultPlan",
    "FaultRule",
    "active_plan",
    "fault_point",
]
