"""Ablation: mining parameters (nomination cap, stop fraction).

§4.3 fixes two constants: at most 10 nominations per step and a 0.1%
stop threshold.  This bench sweeps both on the S1 sample and reports
the model-size consequences (total number of codes), verifying the
constants sit at a sensible knee: more nominations grow the model,
higher stop thresholds shrink it.
"""

from repro.core.mining import MiningConfig
from repro.core.pipeline import EntropyIP


def total_codes(analysis):
    return sum(m.cardinality for m in analysis.encoder.mined_segments)


def test_ablation_mining(benchmark, networks, artifact):
    sample = networks["S1"].sample(5000, seed=0)

    def run():
        outcomes = {}
        for cap in (3, 10, 25):
            config = MiningConfig(max_nominations=cap)
            outcomes[f"cap={cap}"] = total_codes(
                EntropyIP.fit(sample, mining=config)
            )
        for stop in (0.0, 0.001, 0.05):
            config = MiningConfig(stop_fraction=stop)
            outcomes[f"stop={stop}"] = total_codes(
                EntropyIP.fit(sample, mining=config)
            )
        return outcomes

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    artifact(
        "ablation_mining",
        "\n".join(f"{k:>12}: {v} total codes" for k, v in outcomes.items()),
    )

    # Larger nomination caps never shrink the code inventory.
    assert outcomes["cap=3"] <= outcomes["cap=10"] <= outcomes["cap=25"]
    # Earlier stopping never grows it.
    assert outcomes["stop=0.05"] <= outcomes["stop=0.001"] <= outcomes["stop=0.0"]
