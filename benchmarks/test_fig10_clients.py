"""Fig. 10: C1 (mobile clients) entropy vs ACR + browser under F = 01.

The paper's most striking client finding: 47% of IIDs end in 01 with
D = 00000 (one vendor's Android), creating entropy ~0.7 in segments D
and F with a statistical dependency the BN uncovers — conditioning on
F = 01 makes D a string of zeros.
"""

import pytest

from repro.core.pipeline import EntropyIP
from repro.viz.figures import render_acr_entropy_plot, render_browser


def test_fig10_clients(benchmark, networks, artifact):
    def analyze():
        sample = networks["C1"].sample(6000, seed=0)
        return EntropyIP.fit(sample)

    analysis = benchmark.pedantic(analyze, rounds=1, iterations=1)

    last = analysis.encoder.mined_segments[-1]
    code_01 = next(
        v.code for v in last.values if v.low == 1 and not v.is_range
    )
    artifact(
        "fig10_clients",
        render_acr_entropy_plot(analysis, title="Fig 10(a): C1")
        + "\n\n"
        + render_browser(
            analysis.browse().click(code_01),
            title="Fig 10(b): conditioned on F = 01 (47% of IPs)",
        ),
    )

    entropy = analysis.entropy()
    # D region (bits 64-84): entropy ~0.7 (47% zeros, 53% random).
    assert 0.5 < float(entropy[17:21].mean()) < 0.85
    # E region (bits 88-116): near 1 (random under both patterns).
    assert float(entropy[22:29].mean()) > 0.9
    # F region (last byte): depressed like D.
    assert 0.4 < float(entropy[31]) < 0.85

    # The 01 suffix carries ~47% mass.
    value_01 = next(v for v in last.values if v.low == 1 and not v.is_range)
    assert value_01.frequency == pytest.approx(0.47, abs=0.04)

    # Conditioning on F=01 collapses D to zeros (Fig. 10(b)).
    d_label = next(
        m.segment.label for m in analysis.encoder.mined_segments
        if m.segment.first_nybble == 17
    )
    browser = analysis.browse().click(code_01)
    top_d = browser.top_values(d_label, limit=1)[0]
    assert top_d.value_text.strip("0") == ""
    assert top_d.probability > 0.9
