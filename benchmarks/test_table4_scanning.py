"""Table 4: IPv6 scanning results for servers (S*) and routers (R*).

Methodology of §5.5: train a BN on 1K real addresses per network,
generate candidates (50K here; the paper generates 1M), score against
the held-out test set, the simulated ping oracle, and the simulated
rDNS oracle; report overall success rate and newly-discovered /64s.

Asserted shape (paper's Table 4):
- S3 (anycast, one /96) has the highest success rate;
- S1 (pseudo-random IIDs) is hopeless (≈0%);
- routers are scannable and yield new /64 prefixes (R1 the most);
- R3/R4 yield few or no new /64s (their /64s are the prefix pool seen
  in training).
"""

from conftest import N_CANDIDATES, TRAIN_SIZE

from repro.scan.evaluate import scan_experiment

NAMES = ["S1", "S2", "S3", "S4", "S5", "R1", "R2", "R3", "R4", "R5"]


def test_table4_scanning(benchmark, networks, artifact):
    def run():
        return {
            name: scan_experiment(
                networks[name],
                train_size=TRAIN_SIZE,
                n_candidates=N_CANDIDATES,
                seed=0,
            )
            for name in NAMES
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    header = (
        f"Table 4 (train={TRAIN_SIZE}, candidates={N_CANDIDATES}; "
        "paper: 1K/1M)"
    )
    artifact(
        "table4_scanning",
        header + "\n" + "\n".join(results[name].row() for name in NAMES),
    )

    rates = {name: results[name].success_rate for name in NAMES}

    # S3 wins among all datasets; S1 is effectively zero.
    assert rates["S3"] == max(rates.values())
    assert rates["S1"] < 0.005
    # Every dataset except S1 finds something (paper: 14 of 15).
    for name in NAMES:
        if name != "S1":
            assert results[name].found_overall > 0, name
    # Routers discover new /64s (the paper's headline contribution).
    assert results["R1"].new_prefixes64 > 100
    assert results["R2"].new_prefixes64 > 0
    assert results["R5"].new_prefixes64 > 0
    # R3/R4: /64 space equals the training-visible prefix pool.
    assert results["R3"].new_prefixes64 < 100
    assert results["R4"].new_prefixes64 < 100
    # Server ordering: the dense anycast beats the sparse cloud.
    assert rates["S3"] > rates["S2"] > rates["S4"]
    # R5 is the weakest router (paper: 0.55%).
    router_rates = {n: rates[n] for n in ("R1", "R2", "R3", "R4", "R5")}
    assert router_rates["R5"] <= sorted(router_rates.values())[2]
