"""Fig. 7: S1 entropy vs ACR plot + the browser conditioned on B=08.

The paper conditions the S1 browser on segment B equal to 08 or 09
(variant v2, ~20% of addresses) and observes "a major drop in the
variability of bits 56-116: the majority of addresses in this variant
are essentially non-random".
"""

import numpy as np

from repro.viz.figures import render_acr_entropy_plot, render_browser


def test_fig7_servers(benchmark, s1_analysis, artifact):
    # Find B's code for the literal value 08.
    mined_b = next(
        m for m in s1_analysis.encoder.mined_segments
        if m.segment.label == "B"
    )
    code_08 = next(
        v.code for v in mined_b.values if v.low == 0x08 and not v.is_range
    )

    def render():
        plot = render_acr_entropy_plot(
            s1_analysis, title="Fig 7(a): S1 entropy vs 4-bit ACR"
        )
        conditioned = render_browser(
            s1_analysis.browse().click(code_08),
            title="Fig 7(b): conditioned on B = 08 (variant v2)",
        )
        return plot, conditioned

    plot, conditioned = benchmark.pedantic(render, rounds=1, iterations=1)
    artifact("fig7_servers", plot + "\n\n" + conditioned)

    # Shape (a): IID nybbles have high entropy but near-zero ACR (each
    # /56 covers few active /64s; variability without discrimination).
    entropy = s1_analysis.entropy()
    acr = s1_analysis.acr()
    iid_zone = slice(18, 26)
    assert float(entropy[iid_zone].mean()) > 0.8
    assert float(acr[iid_zone].mean()) < 0.2

    # Shape (b): conditioning on the v2 variant collapses the wide IID
    # segment onto its structured (non-random) values.
    wide = max(
        s1_analysis.encoder.mined_segments,
        key=lambda m: (m.segment.first_nybble >= 15) * m.segment.nybble_count,
    )
    label = wide.segment.label
    prior = s1_analysis.model.marginals()[label]
    posterior = s1_analysis.model.marginals({"B": code_08})[label]
    ranges = np.array([v.is_range and v.span() > 10**6 for v in wide.values])
    random_mass_prior = float(prior[ranges].sum())
    random_mass_posterior = float(posterior[ranges].sum())
    assert random_mass_posterior < random_mass_prior - 0.3
