"""Table 6: client /64 prefix prediction (C1-C5).

Client IIDs are pseudo-random, so §5.6 constrains Entropy/IP to the top
64 bits and predicts *prefixes*: train on 1K /64s seen on day one,
generate candidates, score against the day-one set and the full week.

Asserted shape: thousands of /64s predicted per network; C5 (dense
dynamic pools) is the most predictable, C2/C3 (sparse plans) the least;
the 7-day count is at least the 1-day count.
"""

from conftest import N_CANDIDATES, TRAIN_SIZE

from repro.scan.evaluate import prefix_prediction_experiment

NAMES = ["C1", "C2", "C3", "C4", "C5"]


def test_table6_prefix_prediction(benchmark, networks, artifact):
    def run():
        return {
            name: prefix_prediction_experiment(
                networks[name],
                train_size=TRAIN_SIZE,
                n_candidates=N_CANDIDATES,
                seed=0,
            )
            for name in NAMES
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    header = (
        f"Table 6 (train={TRAIN_SIZE} /64s, candidates={N_CANDIDATES}; "
        "paper: 1K/1M)"
    )
    artifact(
        "table6_prefix_prediction",
        header + "\n" + "\n".join(results[name].row() for name in NAMES),
    )

    rates = {n: results[n].success_rate_week for n in NAMES}

    # C5 is the most predictable; the sparse plans C2/C3 the least.
    assert rates["C5"] == max(rates.values())
    assert min(rates, key=rates.get) in ("C2", "C3")
    # Day-1 hits never exceed week hits.
    for name in NAMES:
        assert results[name].predicted_day <= results[name].predicted_week
    # Every network yields at least some predicted prefixes (the paper
    # predicts thousands for each).
    for name in NAMES:
        assert results[name].predicted_week > 0, name
    # C5 in the paper reaches ~20%; ours must be the same order.
    assert rates["C5"] > 0.05
