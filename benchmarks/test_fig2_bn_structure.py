"""Fig. 2: the BN dependency graph of the Japanese telco model.

The paper's figure shows segment nodes with edges marking statistical
dependency; red edges mark the direct parents of segment J.  We render
the learned graph and assert the J-analog segment has parents among the
earlier segments (the dependency Table 2 quantifies).
"""

from repro.viz.figures import render_bn_graph


def test_fig2_bn_structure(benchmark, jp_analysis, artifact):
    wide_label = max(
        jp_analysis.encoder.mined_segments,
        key=lambda m: (m.segment.first_nybble >= 17) * m.segment.nybble_count,
    ).segment.label

    def render():
        return render_bn_graph(jp_analysis, highlight=wide_label)

    text = benchmark.pedantic(render, rounds=1, iterations=1)
    artifact("fig2_bn_structure", text)

    network = jp_analysis.model.network
    parents = network.parents(wide_label)
    assert parents, "the J-analog segment must have BN parents"
    # All parents precede the child (the §4.4 ordering constraint).
    order = {v: i for i, v in enumerate(network.variables)}
    for parent, child in network.edges():
        assert order[parent] < order[child]
    # C (the plan selector) is an ancestor of the J-analog segment.
    import networkx as nx

    graph = network.to_networkx()
    assert nx.has_path(graph, "C", wide_label)
