"""Fig. 1: the Entropy/IP interface on the Japanese telco client set.

(a) entropy per nybble with segment boundaries; (b) the conditional
probability browser, unconditioned; (c) the browser after clicking the
zeros value of the wide IID segment — C collapses to 10 at ~100%.
"""

from repro.viz.figures import render_acr_entropy_plot, render_browser


def zero_code_of_wide_segment(analysis):
    """The J-analog: the widest IID-side segment's all-zeros value."""
    wide = max(
        analysis.encoder.mined_segments,
        key=lambda m: (m.segment.first_nybble >= 17) * m.segment.nybble_count,
    )
    return next(v.code for v in wide.values if v.low == 0 and not v.is_range)


def test_fig1_interface(benchmark, jp_analysis, artifact):
    def render():
        plot = render_acr_entropy_plot(
            jp_analysis, title="Fig 1(a): Japanese telco client prefix"
        )
        before = render_browser(
            jp_analysis.browse(), title="Fig 1(b): unconditioned browser"
        )
        code = zero_code_of_wide_segment(jp_analysis)
        after = render_browser(
            jp_analysis.browse().click(code),
            title=f"Fig 1(c): after clicking {code} (the 00000... value)",
        )
        return plot, before, after, code

    plot, before, after, code = benchmark.pedantic(render, rounds=1, iterations=1)
    artifact("fig1_interface", "\n\n".join([plot, before, after]))

    # Shape: clicking the 60% zeros value forces C to its 10 value at
    # ~100%, exactly the Fig. 1(b)→(c) transition.
    browser = jp_analysis.browse().click(code)
    top_c = browser.top_values("C", limit=1)[0]
    assert top_c.value_text == "10"
    assert top_c.probability > 0.95
    unconditioned_c = jp_analysis.browse().top_values("C", limit=1)[0]
    assert unconditioned_c.probability < 0.75  # ~60% before the click
