"""Throughput harness for the full §5.5 scan pipeline at paper scale.

The paper's headline workload is "train on 1K addresses, generate 1M
candidates per network, score them against the oracles".  This harness
times every stage of that path — the ``EntropyIP.fit`` model fit itself
(vs the retained scalar ``_fit_reference`` path), BN sampling,
code→address decoding, dedup against the training set, the end-to-end
``AddressModel.generate_set`` loop, the ping/rDNS oracle membership
sweep, the complete ``scan_experiment``, a multi-round adaptive
``ScanCampaign``, and a 100-round fixed-size *steady-state* campaign on
the persistent-session engine (timed per round against the retained
re-seeding reference loop, which re-pays its history every round) —
for representative networks (S1: pseudo-random IIDs,
pure throughput; R1: low-entropy routers, heavy duplicate suppression
and real hits) and writes a JSON record so the perf trajectory is
trackable across PRs.

It is deliberately implementation-agnostic: it uses the vectorized
primitives (``decode_to_set``, ``contains_rows``, ``ping_mask``) when
present and falls back to the seed-era paths (``decode_matrix`` +
``from_ints``, Python int/set membership, ``ping_many``) otherwise.
Running it on the seed tree produced the checked-in baseline
``benchmarks/BENCH_baseline_seed.json``; subsequent runs report
per-stage speedups against that baseline.  Stages without a seed
baseline entry carry in-harness references measured on the same data:
the per-int ``ping()`` loop for the population sweep
(``speedup_vs_scalar``) and the PR-2 sorted searchsorted index for the
candidate-batch membership oracle (``speedup_vs_searchsorted``).  A
``workers`` stage runs the sharded engine at ``workers=1`` and
``workers=4`` on the same seed and records whether the outputs were
bit-identical.

``REPRO_BENCH_CANDIDATES`` scales *every* stage — generation and the
scan side (oracle sweep subsample, scalar reference, candidate batch,
scan experiment, campaign budget) — so CI smoke passes run the whole
pipeline small.

Two stages added with the fused pipeline PR: ``sample_decode_fused``
times :func:`repro.bayes.sampling.sample_packed` (BN states drawn
straight into the packed-uint64 row layout) against the retained
two-step ``sample_codes`` → ``decode_to_set`` reference on identical
RNG streams (``sample_decode_twostep``), recording bit-identity of the
packed rows; and a top-level ``backends`` record inserts ~10× the
candidate scale into the in-memory ``BucketTable`` and the /64-sharded
``ShardedBucketTable`` side by side (identical batches, periodic
``limit=`` rollbacks), verifying identical verdicts while timing both.

The serving-runtime PR adds a top-level ``service_throughput`` record:
concurrent client threads pulling generate requests through the
:class:`~repro.serve.service.HitlistService` facade, recording
requests/s with p50/p99 request latency and verifying every served
stream bit-identical to the serial direct-library reference
(``identical_to_direct``).

The process-parallel PR adds a top-level ``process_parallel`` record:
the sharded engine run on the same seed across executor backends —
serial reference, thread executor, and the process executor at rising
worker counts (4/8 only where the host's affinity mask grants the
cores) — verifying the packed rows bit-identical across every run
(``workers``/``exec_backend`` are throughput knobs, never stream
parameters) and recording per-run seconds, ``active_backend`` (did a
process run actually run on processes, or degrade to threads?) and
speedups vs the serial reference.

The streaming-ingest PR adds a top-level ``streaming_ingest`` record:
the :class:`~repro.ingest.IngestPipeline` fed a drifting temporal
snapshot series in batches, recording sustained ingest rows/s, refit
count and per-refit latency against the refit-every-batch reference
(a from-scratch ``EntropyIP.fit`` on the cumulative rows after every
batch), and verifying both land on the same final model digest
(``digest_equal_to_reference`` — the incremental path's bit-identity
contract).

The fault-tolerance PR adds a top-level ``fault_overhead`` record: the
same sharded draw timed disarmed (no fault plan) and under an armed
plan whose rules never match, recording the armed/disarmed wall-time
ratio (the whole measurable cost of the ``fault_point`` probes woven
into the executor hot path), a per-call microbenchmark of the disarmed
probe, and bit-identity of the two draws — consulting a site never
touches the stream.

Usage::

    PYTHONPATH=src python benchmarks/perf_generation.py \
        [--n 1000000] [--networks S1 R1] [--out BENCH_generation.json]

By default the record is written to ``benchmarks/out/`` (gitignored
scratch); set ``REPRO_BENCH_WRITE=1`` to update the committed
repo-root ``BENCH_generation.json`` — do that only from an idle host.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import threading
import time
from typing import Dict, List, Optional

import numpy as np

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BASELINE_PATH = pathlib.Path(__file__).resolve().parent / "BENCH_baseline_seed.json"
DEFAULT_OUT = REPO_ROOT / "BENCH_generation.json"
OUT_DIR = pathlib.Path(__file__).resolve().parent / "out"


def record_output_path() -> pathlib.Path:
    """Where a benchmark run writes its record.

    Defaults to the gitignored ``benchmarks/out/`` scratch directory so
    a casual (or loaded-host) run can never clobber the committed
    repo-root ``BENCH_generation.json``; exporting
    ``REPRO_BENCH_WRITE=1`` opts into updating the tracked record —
    only do that from an idle host (see ROADMAP perf notes).
    """
    if os.environ.get("REPRO_BENCH_WRITE") == "1":
        return DEFAULT_OUT
    OUT_DIR.mkdir(parents=True, exist_ok=True)
    return OUT_DIR / "BENCH_generation.json"

#: Paper scale, overridable for reduced-size CI smoke passes.
DEFAULT_N_CANDIDATES = int(os.environ.get("REPRO_BENCH_CANDIDATES", 1_000_000))

TRAIN_SIZE = 1000
NETWORKS = ["S1", "R1"]


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def measure_network(
    network_name: str,
    n_candidates: int,
    train_size: int = TRAIN_SIZE,
    seed: int = 0,
) -> Dict:
    """Time each generation stage for one network."""
    from repro.core.pipeline import EntropyIP
    from repro.datasets.networks import build_network
    from repro.ipv6.sets import AddressSet

    network = build_network(network_name)
    train = network.sample(train_size, seed=seed)
    analysis = EntropyIP.fit(train)
    model = analysis.model
    encoder = model.encoder

    stages: Dict[str, Dict[str, float]] = {}

    def record(name: str, seconds: float, rows: int):
        stages[name] = {
            "seconds": round(seconds, 6),
            "addresses_per_second": round(rows / seconds, 1) if seconds else 0.0,
        }

    # --- stage 0: the EntropyIP fit path itself ---------------------
    # Vectorized fit (segmentation → mining → structure learning) vs
    # the retained scalar reference (``EntropyIP._fit_reference``),
    # best of three each so one scheduler hiccup cannot decide the
    # reported ratio.  The golden-fit suite asserts the two paths
    # produce bit-identical models; here we only time them.
    fit_elapsed = min(
        _timed(lambda: EntropyIP.fit(train))[1] for _ in range(3)
    )
    record("fit", fit_elapsed, train_size)
    if hasattr(EntropyIP, "_fit_reference"):
        reference_elapsed = min(
            _timed(lambda: EntropyIP._fit_reference(train))[1]
            for _ in range(3)
        )
        record("fit_reference", reference_elapsed, train_size)
        if fit_elapsed:
            stages["fit"]["speedup_vs_reference"] = round(
                reference_elapsed / fit_elapsed, 2
            )

    # --- stage 1: BN forward sampling -------------------------------
    rng = np.random.default_rng(seed)
    codes, elapsed = _timed(lambda: model.sample_codes(n_candidates, rng))
    record("sample", elapsed, n_candidates)

    # --- stage 2: code matrix → addresses ---------------------------
    rng = np.random.default_rng(seed + 1)
    if hasattr(encoder, "decode_to_set"):
        decoded, elapsed = _timed(lambda: encoder.decode_to_set(codes, rng))
    else:  # seed path: Python-int assembly + hex re-parse
        def _seed_decode():
            values = encoder.decode_matrix(codes, rng)
            return AddressSet.from_ints(
                values, width=encoder.width, already_truncated=True
            )

        decoded, elapsed = _timed(_seed_decode)
    record("decode", elapsed, n_candidates)

    # --- stage 2b: fused sample→packed vs the two-step reference ----
    fused_stages = measure_fused_stage(model, n_candidates, seed)
    if fused_stages is not None:
        stages.update(fused_stages)

    # --- stage 3: dedup against the training set --------------------
    if hasattr(decoded, "contains_rows"):
        _, elapsed = _timed(lambda: train.contains_rows(decoded))
    else:  # seed path: per-address Python set membership
        def _seed_dedup():
            training = set(train.to_ints())
            return [v in training for v in decoded.to_ints()]

        _, elapsed = _timed(_seed_dedup)
    record("dedup", elapsed, n_candidates)

    # --- stage 4: end-to-end generate_set ---------------------------
    rng = np.random.default_rng(seed + 2)
    exclude = set(train.to_ints())
    generated, elapsed = _timed(
        lambda: model.generate_set(n_candidates, rng, exclude=exclude)
    )
    record("end_to_end", elapsed, len(generated))

    result = {
        "generated": len(generated),
        "stages": stages,
        "scan": measure_scan_stages(
            network, generated, n_candidates, train_size=train_size, seed=seed
        ),
    }

    # --- stage 5: sharded engine (workers=1 vs workers=4) -----------
    # Only present when the model supports the workers parameter; the
    # two runs share a seed, so bit-identical output is the engine's
    # determinism contract made measurable.
    workers_stage = measure_workers_stage(model, train, n_candidates, seed)
    if workers_stage is not None:
        result["workers"] = workers_stage
    return result


def measure_fused_stage(model, n_candidates: int, seed: int) -> Optional[Dict]:
    """Time the fused sample→packed path against the retained two-step
    reference on identical RNG streams.

    The two-step reference is the real pipeline the fused path
    replaces — ``sample_codes`` materializing the (n, num_vars) code
    matrix, then ``decode_to_set`` re-gathering it through the nybble
    tables — so the ratio is the fusion win, not a microbenchmark.
    Both paths draw from a fresh generator seeded identically and must
    produce bit-identical packed rows (the fused path consumes the RNG
    stream in exactly the reference's order); best of two per path so
    one scheduler hiccup cannot decide the reported ratio.  Returns
    None on trees without a fused plan (or encoders whose segment
    layout straddles a word boundary).
    """
    encoder = model.encoder
    if not hasattr(encoder, "fused_plan"):
        return None
    plan = encoder.fused_plan()
    if plan is None:
        return None
    from repro.bayes.sampling import sample_packed

    def two_step():
        rng = np.random.default_rng(seed + 5)
        codes = model.sample_codes(n_candidates, rng)
        return encoder.decode_to_set(codes, rng, validate=False)

    def fused():
        rng = np.random.default_rng(seed + 5)
        return sample_packed(model.network, plan, n_candidates, rng)

    reference, twostep_elapsed = _timed(two_step)
    fused_words, fused_elapsed = _timed(fused)
    _, again = _timed(two_step)
    twostep_elapsed = min(twostep_elapsed, again)
    _, again = _timed(fused)
    fused_elapsed = min(fused_elapsed, again)
    return {
        "sample_decode_twostep": {
            "seconds": round(twostep_elapsed, 6),
            "addresses_per_second": (
                round(n_candidates / twostep_elapsed, 1)
                if twostep_elapsed
                else 0.0
            ),
        },
        "sample_decode_fused": {
            "seconds": round(fused_elapsed, 6),
            "addresses_per_second": (
                round(n_candidates / fused_elapsed, 1)
                if fused_elapsed
                else 0.0
            ),
            "bit_identical": bool(
                np.array_equal(fused_words, reference.packed_rows())
            ),
            "speedup_vs_twostep": (
                round(twostep_elapsed / fused_elapsed, 2)
                if fused_elapsed
                else 0.0
            ),
        },
    }


def measure_workers_stage(
    model, train, n_candidates: int, seed: int
) -> Optional[Dict]:
    """Time sharded generation and verify worker-count invariance."""
    import inspect

    if "workers" not in inspect.signature(model.generate_set).parameters:
        return None
    runs = {}
    for workers in (1, 4):
        rng = np.random.default_rng(seed + 3)
        out, elapsed = _timed(
            lambda: model.generate_set(
                n_candidates, rng, exclude=train, workers=workers
            )
        )
        runs[workers] = (out, elapsed)
    serial, parallel = runs[1][0], runs[4][0]
    return {
        "workers_1_seconds": round(runs[1][1], 6),
        "workers_4_seconds": round(runs[4][1], 6),
        "addresses_per_second": (
            round(len(parallel) / runs[4][1], 1) if runs[4][1] else 0.0
        ),
        "bit_identical": bool(
            serial.matrix.shape == parallel.matrix.shape
            and np.array_equal(serial.matrix, parallel.matrix)
        ),
    }


#: Subsample size for the in-harness scalar oracle reference (the
#: per-int ``ping()`` loop is ~3 orders of magnitude slower, so it is
#: timed on a slice and reported as extrapolated addr/s).
SCALAR_ORACLE_SAMPLE = 50_000

#: Below this candidate count the run is a smoke pass: fixed costs
#: (training-set size, observed dataset) shrink along with the batch.
SMOKE_THRESHOLD = 200_000

#: Probe budget / round size of the adaptive-campaign stage.
CAMPAIGN_BUDGET = 150_000
CAMPAIGN_ROUND = 50_000

#: The steady-state campaign stage: many fixed-size rounds, so the
#: per-round cost curve (and the re-seeding reference's quadratic
#: history cost) is actually observable.  Flatness is gated on the
#: *second half* of the rounds — the steady-state window, after the
#: session's working set has aged past the young-campaign transient
#: (a growing table's per-probe cost rises with cache residency while
#: it is small; claiming a 1k-row round and a 100k-row round cost the
#: same would gate cache physics, not the accounting this stage
#: exists to check).
STEADY_ROUNDS = 100
STEADY_BUDGET = 200_000


def measure_membership_oracle(
    responder, candidates, bucket_record: Dict
) -> Optional[Dict]:
    """Time the PR-2 searchsorted membership path on the same batch.

    Both indexes are pre-built outside the timed region, so the two
    numbers compare pure random-probe cost: the bucket table's ~1-2
    gathers per row against the sorted index's log2(n) binary-search
    steps.  Attaches ``speedup_vs_searchsorted`` to the bucket stage.
    Returns None on trees without the sorted reference path.
    """
    population = getattr(responder, "_population", None)
    if population is None or not hasattr(population, "_match_rows_sorted"):
        return None
    population.match_rows(candidates)  # warm the bucket index
    population._match_rows_sorted(candidates)  # warm the sorted index
    # Best of three per path: a single warm probe is ~100 ms at paper
    # scale, small enough that one scheduler hiccup would otherwise
    # decide the reported ratio.
    bucket_positions, bucket_elapsed = _timed(
        lambda: population.match_rows(candidates)
    )
    sorted_positions, sorted_elapsed = _timed(
        lambda: population._match_rows_sorted(candidates)
    )
    for _ in range(2):
        _, again = _timed(lambda: population.match_rows(candidates))
        bucket_elapsed = min(bucket_elapsed, again)
        _, again = _timed(lambda: population._match_rows_sorted(candidates))
        sorted_elapsed = min(sorted_elapsed, again)
    assert np.array_equal(bucket_positions, sorted_positions)
    # Re-time the bucket probe warm (the candidate_oracle stage above
    # included building the index and gathering verdicts).
    bucket_record["warm_probe_seconds"] = round(bucket_elapsed, 6)
    if bucket_elapsed:
        bucket_record["speedup_vs_searchsorted"] = round(
            sorted_elapsed / bucket_elapsed, 2
        )
    return {
        "seconds": round(sorted_elapsed, 6),
        "addresses_per_second": (
            round(len(candidates) / sorted_elapsed, 1)
            if sorted_elapsed
            else 0.0
        ),
    }


def measure_scan_stages(
    network,
    candidates,
    n_candidates: int,
    train_size: int = TRAIN_SIZE,
    seed: int = 0,
) -> Dict:
    """Time the scan-side §5.5 stages: oracle sweep, full experiment,
    multi-round adaptive campaign.

    ``candidates`` is the pre-generated :class:`AddressSet` batch from
    the generation stages (the oracle timing should not re-pay for
    generation).
    """
    from repro.scan.campaign import run_campaign
    from repro.scan.evaluate import scan_experiment
    from repro.scan.responder import SimulatedResponder

    full_population = network.population(seed)
    # Honor the requested scale uniformly: a reduced-size smoke pass
    # sweeps a (deterministic) population subsample instead of paying
    # for the full deployment.
    if n_candidates < len(full_population):
        population = full_population.sample(
            n_candidates, np.random.default_rng(seed + 99)
        )
    else:
        population = full_population
    responder = SimulatedResponder(
        population,
        ping_rate=network.ping_rate,
        rdns_rate=network.rdns_rate,
        seed=seed,
    )
    stages: Dict[str, Dict] = {}

    # --- oracle: full ping sweep over the deployed population -------
    # Every member pays the keyed hash — the per-hit cost of scoring,
    # and the whole of the seed's per-int ``responding_population``
    # loop.  A fresh responder is timed so no lazy cache is pre-warmed.
    cold = SimulatedResponder(
        population,
        ping_rate=network.ping_rate,
        rdns_rate=network.rdns_rate,
        seed=seed,
    )
    if hasattr(cold, "responding_set"):
        _, elapsed = _timed(cold.responding_set)
    else:  # seed path: the per-int loop (returns Python ints)
        _, elapsed = _timed(cold.responding_population)
    stages["oracle"] = {
        "seconds": round(elapsed, 6),
        "addresses_per_second": (
            round(len(population) / elapsed, 1) if elapsed else 0.0
        ),
    }

    # --- scalar reference: the seed's per-int population sweep ------
    scalar_sample = min(SCALAR_ORACLE_SAMPLE, n_candidates)
    members = sorted(set(population.to_ints()))[:scalar_sample]
    responder.ping(0)  # materialize the lazy member set outside timing
    _, elapsed = _timed(lambda: [v for v in members if responder.ping(v)])
    scalar_rate = round(len(members) / elapsed, 1) if elapsed else 0.0
    stages["oracle_scalar_reference"] = {
        "seconds": round(elapsed, 6),
        "sample": len(members),
        "addresses_per_second": scalar_rate,
    }
    if scalar_rate:
        stages["oracle"]["speedup_vs_scalar"] = round(
            stages["oracle"]["addresses_per_second"] / scalar_rate, 2
        )

    # --- oracle over the generated 1M-candidate batch ---------------
    # Mostly non-members for sparse networks: membership-bound, the
    # batch cost ``scan_experiment`` pays three times.  Two references
    # ride along, timed on the same batch: cheap Python set misses on
    # a subsample (``speedup_vs_scalar``) and, when the bucket table is
    # live, the PR-2 sorted searchsorted index at full batch size
    # (``speedup_vs_searchsorted``) with both indexes pre-built so the
    # comparison is pure query cost.
    if hasattr(responder, "ping_mask"):
        _, elapsed = _timed(lambda: responder.ping_mask(candidates))
    else:
        values = candidates.to_ints()
        _, elapsed = _timed(lambda: responder.ping_many(values))
    stages["candidate_oracle"] = {
        "seconds": round(elapsed, 6),
        "addresses_per_second": (
            round(len(candidates) / elapsed, 1) if elapsed else 0.0
        ),
    }
    sample = candidates.take(
        np.arange(min(len(candidates), scalar_sample))
    ).to_ints()
    _, elapsed = _timed(lambda: [v for v in sample if responder.ping(v)])
    if elapsed:
        stages["candidate_oracle"]["speedup_vs_scalar"] = round(
            stages["candidate_oracle"]["addresses_per_second"]
            / (len(sample) / elapsed),
            2,
        )
    bucket_stage = measure_membership_oracle(
        responder, candidates, stages["candidate_oracle"]
    )
    if bucket_stage is not None:
        stages["candidate_oracle_searchsorted_reference"] = bucket_stage

    # --- the complete Table 4 experiment at the requested scale -----
    # A smoke pass shrinks the training set and observed dataset along
    # with the candidate count, so the fixed model-fit cost cannot
    # dominate a reduced-size CI run; the full-scale defaults are
    # untouched.
    smoke = n_candidates < SMOKE_THRESHOLD
    experiment_train = (
        train_size if not smoke else max(100, n_candidates // 100)
    )
    experiment_dataset = (
        None
        if not smoke
        else max(
            experiment_train * 2 + 1,
            min(2 * n_candidates, len(full_population) // 2),
        )
    )
    result, elapsed = _timed(
        lambda: scan_experiment(
            network,
            train_size=experiment_train,
            n_candidates=n_candidates,
            dataset_size=experiment_dataset,
            seed=seed,
        )
    )
    stages["scan_experiment"] = {
        "seconds": round(elapsed, 6),
        "n_candidates": result.n_candidates,
        "candidates_per_second": (
            round(result.n_candidates / elapsed, 1) if elapsed else 0.0
        ),
        "found_overall": result.found_overall,
        "new_prefixes64": result.new_prefixes64,
    }

    # --- multi-round adaptive campaign (bootstrap loop) -------------
    train = network.sample(experiment_train, seed=seed)
    budget = min(CAMPAIGN_BUDGET, n_candidates)
    campaign, elapsed = _timed(
        lambda: run_campaign(
            train,
            responder,
            probe_budget=budget,
            round_size=max(budget // 3, 1),  # at least 3 rounds
            adaptive=True,
            seed=seed,
        )
    )
    stages["adaptive_campaign"] = {
        "seconds": round(elapsed, 6),
        "probes": campaign.total_probes,
        "probes_per_second": (
            round(campaign.total_probes / elapsed, 1) if elapsed else 0.0
        ),
        "rounds": len(campaign.rounds),
        "hits": campaign.total_hits,
        "new_prefixes64": len(campaign.discovered_prefixes64),
    }

    # --- steady-state campaign: many rounds at fixed size -----------
    steady = measure_campaign_steady_state(
        train, responder, n_candidates, seed=seed
    )
    if steady is not None:
        stages.update(steady)
    return stages


def measure_campaign_steady_state(
    train, responder, n_candidates: int, seed: int = 0
) -> Optional[Dict]:
    """Time a long fixed-round-size campaign on the persistent-session
    engine against the retained re-seeding reference loop.

    The steady-state claim is per-round cost staying ~flat however old
    the campaign gets — gated on the second half of the rounds (see
    the note at ``STEADY_ROUNDS``); the reference re-pays its history
    every round (re-seeded exclusion table, recomputed /64
    accounting), so its total grows quadratically with the round
    count.  Both runs use the same seed and must produce identical
    outcomes round for round (recorded as ``identical_to_reseed``).
    Returns None on trees without the reference loop.
    """
    from repro.scan.campaign import ScanCampaign

    if not hasattr(ScanCampaign, "_run_reseed_reference"):
        return None
    budget = min(STEADY_BUDGET, n_candidates)
    round_size = max(budget // STEADY_ROUNDS, 1)

    def build():
        return ScanCampaign(
            train,
            responder,
            probe_budget=budget,
            round_size=round_size,
            adaptive=False,
            seed=seed,
        )

    session_result, session_elapsed = _timed(lambda: build().run())
    reseed_result, reseed_elapsed = _timed(
        lambda: build()._run_reseed_reference()
    )
    per_round = [r.seconds for r in session_result.rounds]
    # The steady-state window: the second half of the campaign, where
    # the session already carries half the final history.
    window = per_round[len(per_round) // 2:]
    first5 = sum(window[:5]) / max(len(window[:5]), 1)
    last5 = sum(window[-5:]) / max(len(window[-5:]), 1)
    identical = (
        session_result.discovered == reseed_result.discovered
        and session_result.discovered_prefixes64
        == reseed_result.discovered_prefixes64
        and [
            (r.probes_sent, r.hits, r.cumulative_probes, r.cumulative_hits,
             r.new_prefixes64)
            for r in session_result.rounds
        ]
        == [
            (r.probes_sent, r.hits, r.cumulative_probes, r.cumulative_hits,
             r.new_prefixes64)
            for r in reseed_result.rounds
        ]
    )
    steady_stage = {
        "seconds": round(session_elapsed, 6),
        "probes": session_result.total_probes,
        "probes_per_second": (
            round(session_result.total_probes / session_elapsed, 1)
            if session_elapsed
            else 0.0
        ),
        "rounds": len(session_result.rounds),
        "round_size": round_size,
        "hits": session_result.total_hits,
        "window_rounds": len(window),
        "first5_round_seconds": round(first5, 6),
        "last5_round_seconds": round(last5, 6),
        "round_flatness_ratio": (
            round(last5 / first5, 3) if first5 else 0.0
        ),
        "identical_to_reseed": bool(identical),
    }
    if session_elapsed:
        steady_stage["speedup_vs_reseed"] = round(
            reseed_elapsed / session_elapsed, 2
        )
    return {
        "campaign_steady_state": steady_stage,
        "campaign_steady_state_reseed": {
            "seconds": round(reseed_elapsed, 6),
            "probes": reseed_result.total_probes,
            "probes_per_second": (
                round(reseed_result.total_probes / reseed_elapsed, 1)
                if reseed_elapsed
                else 0.0
            ),
            "rounds": len(reseed_result.rounds),
        },
    }


#: The service stage: this many client threads, each issuing this many
#: generate requests through the :class:`HitlistService` facade; the
#: candidate scale is split evenly across the requests so the stage's
#: total row volume tracks ``REPRO_BENCH_CANDIDATES`` like every other
#: stage.
SERVICE_CLIENTS = 4
SERVICE_REQUESTS_PER_CLIENT = 8
SERVICE_NETWORK = "S1"


def measure_service_stage(n_candidates: int, seed: int = 0) -> Optional[Dict]:
    """Drive the concurrent serving facade and verify bit-identity.

    ``SERVICE_CLIENTS`` threads hammer one :class:`HitlistService`
    (worker pool sized to the client count), each pulling
    ``SERVICE_REQUESTS_PER_CLIENT`` generate requests off its own warm
    stream.  Requests/s and per-request p50/p99 latency come from the
    service's own accounting (wall clock including queue wait — what a
    caller observes); afterwards every client's concatenated stream is
    replayed against the serial direct-library reference
    (``model.session(exclude=train)`` + ``generate_set`` on a fresh RNG
    with the same seed) and must be bit-identical
    (``identical_to_direct``).  ``overhead_vs_direct`` is the
    concurrent service wall time over the serial direct wall time for
    the same total row volume.  Returns None on trees without the
    serving runtime.
    """
    try:
        from repro.serve import HitlistService, ModelRegistry
    except ImportError:
        return None
    from repro.core.pipeline import EntropyIP
    from repro.datasets.networks import build_network

    network = build_network(SERVICE_NETWORK)
    train = network.sample(TRAIN_SIZE, seed=seed)
    analysis = EntropyIP.fit(train)
    total_requests = SERVICE_CLIENTS * SERVICE_REQUESTS_PER_CLIENT
    batch_rows = max(n_candidates // total_requests, 1)

    registry = ModelRegistry()
    registry.register(SERVICE_NETWORK, analysis)
    served: Dict[str, np.ndarray] = {}
    errors: List[BaseException] = []
    barrier = threading.Barrier(SERVICE_CLIENTS)

    def run_client(index: int, service) -> None:
        client = f"bench-{index}"
        try:
            barrier.wait()  # maximize interleaving
            batches = [
                service.generate(
                    SERVICE_NETWORK, client, batch_rows, seed=seed + index
                ).packed_rows()
                for _ in range(SERVICE_REQUESTS_PER_CLIENT)
            ]
            served[client] = np.vstack(batches)
        except BaseException as exc:  # surfaced after join
            errors.append(exc)

    with HitlistService(
        registry=registry, workers=SERVICE_CLIENTS
    ) as service:
        threads = [
            threading.Thread(target=run_client, args=(index, service))
            for index in range(SERVICE_CLIENTS)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        service_elapsed = time.perf_counter() - started
        stats = service.stats()
    if errors:
        raise errors[0]

    # The serial direct-library reference: the same per-client streams
    # drawn one after another with no service in the way.
    def direct() -> Dict[str, np.ndarray]:
        rows = {}
        for index in range(SERVICE_CLIENTS):
            session = analysis.model.session(exclude=train)
            rng = np.random.default_rng(seed + index)
            rows[f"bench-{index}"] = np.vstack(
                [
                    analysis.model.generate_set(
                        batch_rows, rng, state=session
                    ).packed_rows()
                    for _ in range(SERVICE_REQUESTS_PER_CLIENT)
                ]
            )
        return rows

    reference, direct_elapsed = _timed(direct)
    identical = all(
        np.array_equal(served[client], rows)
        for client, rows in reference.items()
    )
    generate_stats = stats["kinds"].get("generate", {})
    rows_total = total_requests * batch_rows
    return {
        "network": SERVICE_NETWORK,
        "clients": SERVICE_CLIENTS,
        "requests": total_requests,
        "rows_per_request": batch_rows,
        "seconds": round(service_elapsed, 6),
        "requests_per_second": (
            round(total_requests / service_elapsed, 1)
            if service_elapsed
            else 0.0
        ),
        "rows_per_second": (
            round(rows_total / service_elapsed, 1) if service_elapsed else 0.0
        ),
        "p50_ms": generate_stats.get("p50_ms", 0.0),
        "p99_ms": generate_stats.get("p99_ms", 0.0),
        "direct_seconds": round(direct_elapsed, 6),
        "overhead_vs_direct": (
            round(service_elapsed / direct_elapsed, 3)
            if direct_elapsed
            else 0.0
        ),
        "identical_to_direct": bool(identical),
    }


#: The backends stage inserts this multiple of the candidate scale —
#: at the default 1M that is a 10M-row exclusion set, one order past
#: the generation benchmark's own working set (the 100M-row target is
#: the same code path at 10x this, sized out of CI's time budget).
BACKEND_SCALE_MULTIPLIER = 10

#: Rows per insert batch (clamped to a tenth of the total for smoke
#: runs so the stage always sees multiple batches).
BACKEND_BATCH_ROWS = 1_000_000


def measure_backends_stage(n_candidates: int, seed: int = 0) -> Optional[Dict]:
    """Drive both AddressSet storage backends through an identical
    large-scale insert/lookup schedule and verify identical verdicts.

    Synthesizes ``BACKEND_SCALE_MULTIPLIER * n_candidates`` two-word
    rows with ~25% duplicate pressure (values drawn from a pool of
    0.75x the total; word 0 maps each value onto one of ~total/256
    distinct /64 prefixes, so shard routing sees realistic clustering
    — many IIDs per prefix, many prefixes per shard), then feeds the
    same batches to the in-memory ``BucketTable`` and the /64-sharded
    ``ShardedBucketTable``.  Every fourth batch runs through
    ``insert_packed(limit=)`` so the sharded backend's cross-shard
    rollback is exercised at scale.  Fresh-row masks and lookup
    verdicts must match batch for batch (``identical``); per-backend
    insert/lookup totals and the worst single-batch stall are timed.
    Returns None on trees without the backend module.
    """
    try:
        from repro.ipv6.backends import ShardedBucketTable
        from repro.ipv6.sets import BucketTable
    except ImportError:
        return None
    total = BACKEND_SCALE_MULTIPLIER * n_candidates
    word_count = 2
    batch_rows = max(min(BACKEND_BATCH_ROWS, total // 10), 1)
    pool = max(int(total * 0.75), 4)
    # ~256 IIDs per /64 prefix; both words derive from the same value
    # so duplicate rows stay duplicates across the whole row.
    num_prefixes64 = np.uint64(max(total // 256, 2))
    prefix_base = np.uint64(0x20010DB8 << 32)
    rng = np.random.default_rng(seed + 17)
    tables = {
        "memory": BucketTable(word_count),
        "sharded64": ShardedBucketTable(word_count),
    }
    stats = {
        name: {
            "insert_seconds": 0.0,
            "worst_batch_seconds": 0.0,
            "lookup_seconds": 0.0,
        }
        for name in tables
    }
    identical = True
    offered = 0
    lookup_rows = 0
    batch_index = 0
    while offered < total:
        m = min(batch_rows, total - offered)
        values = rng.integers(0, pool, size=m, dtype=np.int64).astype(
            np.uint64
        )
        words = np.empty((m, word_count), dtype=np.uint64)
        words[:, 0] = prefix_base + values % num_prefixes64
        words[:, 1] = values
        limit = None if batch_index % 4 else max(m // 2, 1)
        masks = {}
        for name, table in tables.items():
            started = time.perf_counter()
            masks[name] = table.insert_packed(words, limit=limit)
            elapsed = time.perf_counter() - started
            stats[name]["insert_seconds"] += elapsed
            stats[name]["worst_batch_seconds"] = max(
                stats[name]["worst_batch_seconds"], elapsed
            )
        identical = identical and bool(
            np.array_equal(masks["memory"], masks["sharded64"])
        )
        # Lookup parity on a probe slice: members interleaved with
        # guaranteed misses (a flipped high bit in the IID word).
        probe = words[:: max(m // 4096, 1)].copy()
        probe[::2, 1] ^= np.uint64(1) << np.uint64(63)
        lookup_rows += len(probe)
        hits = {}
        for name, table in tables.items():
            started = time.perf_counter()
            hits[name] = table.lookup(probe)
            stats[name]["lookup_seconds"] += time.perf_counter() - started
        identical = identical and bool(
            np.array_equal(hits["memory"], hits["sharded64"])
        )
        offered += m
        batch_index += 1
    identical = identical and bool(
        len(tables["memory"]) == len(tables["sharded64"])
    )
    record: Dict = {
        "rows_offered": offered,
        "distinct_rows": len(tables["memory"]),
        "scale_multiplier": BACKEND_SCALE_MULTIPLIER,
        "batches": batch_index,
        "lookup_rows": lookup_rows,
        "identical": identical,
    }
    for name, table in tables.items():
        entry = {
            "insert_seconds": round(stats[name]["insert_seconds"], 6),
            "insert_rows_per_second": (
                round(offered / stats[name]["insert_seconds"], 1)
                if stats[name]["insert_seconds"]
                else 0.0
            ),
            "worst_batch_seconds": round(
                stats[name]["worst_batch_seconds"], 6
            ),
            "lookup_seconds": round(stats[name]["lookup_seconds"], 6),
            "slot_count": table.slot_count,
        }
        record[name] = entry
    record["sharded64"]["shards"] = tables["sharded64"].shard_count
    record["sharded64"]["max_shard_rows"] = tables["sharded64"].max_shard_rows
    return record


#: The process-parallel stage runs on the pure-throughput network so
#: the executor comparison is not confounded by duplicate suppression.
PROCESS_PARALLEL_NETWORK = "S1"


def measure_process_parallel_stage(
    n_candidates: int, seed: int = 0
) -> Optional[Dict]:
    """Time the sharded engine across executor backends and verify the
    bit-identity contract.

    Every run draws the same stream — a fresh session, the same seed —
    through a different executor plan: the serial reference
    (``workers=1``), the thread executor at two workers, and the
    process executor at 2 workers plus 4 and 8 where the host's
    affinity mask grants the cores.  (A ``workers=1`` process plan
    would be a lie: ``WorkerPool.map`` runs single-worker pools
    inline, so no process executor ever starts and the run would just
    re-measure the serial path under a ``process`` label.)  The
    packed rows must be
    bit-identical across all of them: shard decomposition is a pure
    function of (caller RNG, shards), so ``workers`` and
    ``exec_backend`` may only change wall time.  Per-run
    ``active_backend`` records whether a process run actually executed
    on processes or gracefully degraded to threads; speedups are vs
    the serial reference.  The near-linear-scaling gate in
    ``test_perf_generation`` reads ``available_cpus`` from this record
    so it only arms on multi-core hosts — a 1-2 core CI runner cannot
    observe scaling.  Returns None on trees without the process
    backend.
    """
    import inspect

    try:
        from repro.exec.pool import available_cpus
    except ImportError:
        return None
    from repro.core.pipeline import EntropyIP
    from repro.datasets.networks import build_network

    network = build_network(PROCESS_PARALLEL_NETWORK)
    train = network.sample(TRAIN_SIZE, seed=seed)
    model = EntropyIP.fit(train).model
    if (
        "exec_backend"
        not in inspect.signature(model.generate_set).parameters
    ):
        return None
    cpus = available_cpus()
    plans = [("serial", 1, None), ("thread_2", 2, "thread")]
    plans += [
        (f"process_{w}", w, "process")
        for w in [2] + [w for w in (4, 8) if cpus >= w]
    ]

    runs: Dict[str, Dict] = {}
    rows: Dict[str, np.ndarray] = {}
    for label, workers, backend in plans:
        session = model.session(exclude=train)
        try:
            rng = np.random.default_rng(seed + 7)
            out, elapsed = _timed(
                lambda: model.generate_set(
                    n_candidates,
                    rng,
                    state=session,
                    workers=workers,
                    exec_backend=backend,
                )
            )
            rows[label] = out.packed_rows()
            runs[label] = {
                "workers": workers,
                "backend": backend or "thread",
                "active_backend": session.get_pool(
                    workers, backend
                ).active_backend,
                "seconds": round(elapsed, 6),
                "addresses_per_second": (
                    round(n_candidates / elapsed, 1) if elapsed else 0.0
                ),
            }
        finally:
            session.close()
    serial_seconds = runs["serial"]["seconds"]
    for label, run in runs.items():
        if label != "serial" and run["seconds"]:
            run["speedup_vs_serial"] = round(
                serial_seconds / run["seconds"], 2
            )
    reference = rows["serial"]
    return {
        "network": PROCESS_PARALLEL_NETWORK,
        "available_cpus": cpus,
        "rows": n_candidates,
        "bit_identical": bool(
            all(np.array_equal(reference, words) for words in rows.values())
        ),
        "runs": runs,
    }


#: The streaming-ingest stage: a drifting temporal feed (steady churn,
#: plus a renumbering event at the first post-training snapshot so the
#: event signal is observable undiluted) sliced into per-snapshot
#: batches.  The
#: snapshot sample size tracks the candidate scale (clamped so a smoke
#: pass still sees multiple refit-worthy windows) and the threshold
#: sits between churn noise and the renumbering signal on this feed;
#: ``min_refit_rows`` (one snapshot's worth of rows) keeps tiny pending
#: windows — whose small-sample JS noise swamps any threshold — from
#: firing on every batch.
INGEST_NETWORK = "S1"
INGEST_SNAPSHOTS = 6
INGEST_BATCHES_PER_SNAPSHOT = 3
INGEST_RENUMBER_AT = 1
INGEST_CHURN = 0.3
INGEST_THRESHOLD = 0.06


def measure_streaming_ingest_stage(
    n_candidates: int, seed: int = 0
) -> Optional[Dict]:
    """Drive the streaming-ingest pipeline over a drifting feed and
    compare it to the refit-every-batch reference.

    The pipeline fits on snapshot 0, then ingests every later snapshot
    in ``INGEST_BATCHES_PER_SNAPSHOT`` slices; drift-triggered refits
    run inline, and one forced catch-up refit at the end covers any
    still-pending rows so the final model spans the whole feed.  The
    reference pays a from-scratch ``EntropyIP.fit`` on the cumulative
    rows after *every* batch — the naive way to keep a model current.
    The two must land on the **same final digest** (the pipeline's
    bit-identity contract) while the pipeline pays strictly fewer
    refits; sustained ingest rows/s and per-refit latency are recorded.
    Returns None on trees without the ingest subsystem.
    """
    try:
        from repro.ingest import IngestConfig, IngestPipeline
    except ImportError:
        return None
    from repro.core.pipeline import EntropyIP
    from repro.datasets.networks import build_network
    from repro.datasets.temporal import SnapshotSeries, TemporalEvent
    from repro.ipv6.sets import AddressSet
    from repro.serve.registry import model_digest

    network = build_network(INGEST_NETWORK)
    sample_size = max(min(n_candidates // 400, 2500), 200)
    snapshots = SnapshotSeries(
        network,
        n_snapshots=INGEST_SNAPSHOTS,
        sample_size=sample_size,
        churn=INGEST_CHURN,
        events=(
            TemporalEvent(at_index=INGEST_RENUMBER_AT, kind="renumber"),
        ),
        seed=seed,
    ).build()
    train = snapshots[0]
    batches = []
    for snapshot in snapshots[1:]:
        bounds = np.linspace(
            0, len(snapshot), INGEST_BATCHES_PER_SNAPSHOT + 1, dtype=int
        )
        batches.extend(
            snapshot.take(range(low, high))
            for low, high in zip(bounds[:-1], bounds[1:])
        )

    analysis = EntropyIP.fit(train)
    pipeline = IngestPipeline(
        "bench",
        analysis,
        config=IngestConfig(
            threshold=INGEST_THRESHOLD, min_refit_rows=sample_size
        ),
    )
    started = time.perf_counter()
    for batch in batches:
        pipeline.ingest(batch)
    drift_refits = pipeline.refits
    if pipeline.pending_rows:
        pipeline.refit()  # catch up so the final model spans the feed
    ingest_elapsed = time.perf_counter() - started
    rows_ingested = pipeline.total_rows - len(train)

    # The refit-every-batch reference: a from-scratch fit on the
    # cumulative rows after each batch (final iteration == the full
    # cumulative fit the pipeline's last refit must reproduce).
    matrices = [train.matrix]
    reference = analysis
    started = time.perf_counter()
    for batch in batches:
        matrices.append(batch.matrix)
        reference = EntropyIP.fit(
            AddressSet(np.concatenate(matrices, axis=0))
        )
    reference_elapsed = time.perf_counter() - started
    reference_refits = len(batches)

    mean_refit = (
        pipeline.refit_seconds_total / pipeline.refits
        if pipeline.refits
        else 0.0
    )
    return {
        "network": INGEST_NETWORK,
        "snapshots": INGEST_SNAPSHOTS,
        "sample_size": sample_size,
        "batches": len(batches),
        "rows_ingested": rows_ingested,
        "seconds": round(ingest_elapsed, 6),
        "rows_per_second": (
            round(rows_ingested / ingest_elapsed, 1) if ingest_elapsed else 0.0
        ),
        "threshold": INGEST_THRESHOLD,
        "drift_refits": drift_refits,
        "refits": pipeline.refits,
        "refit_seconds_total": round(pipeline.refit_seconds_total, 6),
        "mean_refit_seconds": round(mean_refit, 6),
        "last_refit_seconds": round(pipeline.last_refit_seconds or 0.0, 6),
        "final_version": pipeline.version,
        "reference_refits": reference_refits,
        "reference_seconds": round(reference_elapsed, 6),
        "speedup_vs_refit_every_batch": (
            round(reference_elapsed / ingest_elapsed, 2)
            if ingest_elapsed
            else 0.0
        ),
        "digest_equal_to_reference": bool(
            pipeline.digest == model_digest(reference)
        ),
    }


def measure_fault_overhead_stage(
    n_candidates: int, seed: int = 0
) -> Optional[Dict]:
    """Price the fault-injection probes woven into the generation path.

    The fault harness plants ``fault_point`` probes inside the
    executor's dispatch loop and per-shard tasks.  Disarmed (no plan)
    a probe is a single module-global read; armed with a plan whose
    rules never match it adds one site lookup per shard.  This stage
    times the identical sharded draw both ways on the same host — best
    of two per arm, interleaved, so one scheduler hiccup cannot decide
    the ratio — and reports ``overhead_ratio`` (armed/disarmed wall
    time, gated at full scale), a per-call microbenchmark of the
    disarmed probe, and bit-identity of the two draws: consulting a
    site must never touch the RNG stream.
    """
    import inspect

    from repro.core.pipeline import EntropyIP
    from repro.datasets.networks import build_network
    from repro.faults import FaultPlan, fault_point

    train = build_network("S1").sample(TRAIN_SIZE, seed=seed)
    model = EntropyIP.fit(train).model
    if "workers" not in inspect.signature(model.generate_set).parameters:
        return None

    def draw():
        rng = np.random.default_rng(seed + 11)
        return model.generate_set(n_candidates, rng, workers=2)

    def armed_draw():
        # A fresh plan per arm: the selector can never fire, so the
        # probes pay the full armed lookup on every shard without ever
        # injecting anything.
        with FaultPlan.parse("pool.shard@999999999:kill").armed():
            return _timed(draw)

    disarmed_out, disarmed_elapsed = _timed(draw)
    armed_out, armed_elapsed = armed_draw()
    _, again = _timed(draw)
    disarmed_elapsed = min(disarmed_elapsed, again)
    _, again = armed_draw()
    armed_elapsed = min(armed_elapsed, again)

    calls = 200_000
    start = time.perf_counter()
    for _ in range(calls):
        fault_point("pool.shard", call=0, shard=0)
    disarmed_site_ns = (time.perf_counter() - start) / calls * 1e9

    return {
        "disarmed_seconds": round(disarmed_elapsed, 6),
        "armed_seconds": round(armed_elapsed, 6),
        "addresses_per_second": (
            round(n_candidates / disarmed_elapsed, 1)
            if disarmed_elapsed
            else 0.0
        ),
        "overhead_ratio": (
            round(armed_elapsed / disarmed_elapsed, 3)
            if disarmed_elapsed
            else 0.0
        ),
        "disarmed_site_ns": round(disarmed_site_ns, 1),
        "bit_identical": bool(
            np.array_equal(disarmed_out.matrix, armed_out.matrix)
        ),
    }


def measure(
    n_candidates: int,
    networks: Optional[List[str]] = None,
    train_size: int = TRAIN_SIZE,
    seed: int = 0,
) -> Dict:
    """Measure every requested network; return the combined record."""
    result = {
        "n_candidates": n_candidates,
        "train_size": train_size,
        "networks": {
            name: measure_network(
                name, n_candidates, train_size=train_size, seed=seed
            )
            for name in (networks or NETWORKS)
        },
    }
    backends = measure_backends_stage(n_candidates, seed=seed)
    if backends is not None:
        result["backends"] = backends
    service = measure_service_stage(n_candidates, seed=seed)
    if service is not None:
        result["service_throughput"] = service
    ingest = measure_streaming_ingest_stage(n_candidates, seed=seed)
    if ingest is not None:
        result["streaming_ingest"] = ingest
    process_parallel = measure_process_parallel_stage(n_candidates, seed=seed)
    if process_parallel is not None:
        result["process_parallel"] = process_parallel
    fault_overhead = measure_fault_overhead_stage(n_candidates, seed=seed)
    if fault_overhead is not None:
        result["fault_overhead"] = fault_overhead
    return result


def attach_speedups(result: Dict, baseline_path: pathlib.Path = BASELINE_PATH) -> Dict:
    """Add per-stage throughput speedups vs the checked-in seed baseline."""
    if not baseline_path.exists():
        return result
    baseline = json.loads(baseline_path.read_text())
    for name, record in result["networks"].items():
        base_stages = baseline.get("networks", {}).get(name, {}).get("stages", {})
        speedups = {}
        for stage_name, stage in record["stages"].items():
            base = base_stages.get(stage_name)
            if base and base.get("addresses_per_second"):
                speedups[stage_name] = round(
                    stage["addresses_per_second"]
                    / base["addresses_per_second"],
                    2,
                )
        record["speedup_vs_seed"] = speedups
    result["baseline"] = {
        "n_candidates": baseline.get("n_candidates"),
        "path": str(baseline_path.relative_to(REPO_ROOT)),
    }
    return result


def main(argv: Optional[list] = None) -> Dict:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=DEFAULT_N_CANDIDATES)
    parser.add_argument("--networks", nargs="+", default=NETWORKS)
    parser.add_argument("--train-size", type=int, default=TRAIN_SIZE)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=None,
        help=(
            "record destination (default: benchmarks/out/, or the "
            "committed repo-root record when REPRO_BENCH_WRITE=1)"
        ),
    )
    args = parser.parse_args(argv)
    if args.out is None:
        args.out = record_output_path()

    result = measure(
        args.n,
        networks=args.networks,
        train_size=args.train_size,
        seed=args.seed,
    )
    result = attach_speedups(result)
    args.out.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    return result


if __name__ == "__main__":
    main()
