"""Throughput harness for the full §5.5 scan pipeline at paper scale.

The paper's headline workload is "train on 1K addresses, generate 1M
candidates per network, score them against the oracles".  This harness
times every stage of that path — BN sampling, code→address decoding,
dedup against the training set, the end-to-end
``AddressModel.generate_set`` loop, the ping/rDNS oracle membership
sweep, the complete ``scan_experiment``, and a multi-round adaptive
``ScanCampaign`` — for representative networks (S1: pseudo-random IIDs,
pure throughput; R1: low-entropy routers, heavy duplicate suppression
and real hits) and writes a JSON record so the perf trajectory is
trackable across PRs.

It is deliberately implementation-agnostic: it uses the vectorized
primitives (``decode_to_set``, ``contains_rows``, ``ping_mask``) when
present and falls back to the seed-era paths (``decode_matrix`` +
``from_ints``, Python int/set membership, ``ping_many``) otherwise.
Running it on the seed tree produced the checked-in baseline
``benchmarks/BENCH_baseline_seed.json``; subsequent runs report
per-stage speedups against that baseline.  The scan-side oracle stage
has no seed baseline entry, so it carries its own in-harness scalar
reference (the per-int ``ping()`` loop, timed on a subsample) and
reports ``speedup_vs_scalar``.

Usage::

    PYTHONPATH=src python benchmarks/perf_generation.py \
        [--n 1000000] [--networks S1 R1] [--out BENCH_generation.json]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time
from typing import Dict, List, Optional

import numpy as np

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BASELINE_PATH = pathlib.Path(__file__).resolve().parent / "BENCH_baseline_seed.json"
DEFAULT_OUT = REPO_ROOT / "BENCH_generation.json"

TRAIN_SIZE = 1000
NETWORKS = ["S1", "R1"]


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def measure_network(
    network_name: str,
    n_candidates: int,
    train_size: int = TRAIN_SIZE,
    seed: int = 0,
) -> Dict:
    """Time each generation stage for one network."""
    from repro.core.pipeline import EntropyIP
    from repro.datasets.networks import build_network
    from repro.ipv6.sets import AddressSet

    network = build_network(network_name)
    train = network.sample(train_size, seed=seed)
    analysis = EntropyIP.fit(train)
    model = analysis.model
    encoder = model.encoder

    stages: Dict[str, Dict[str, float]] = {}

    def record(name: str, seconds: float, rows: int):
        stages[name] = {
            "seconds": round(seconds, 6),
            "addresses_per_second": round(rows / seconds, 1) if seconds else 0.0,
        }

    # --- stage 1: BN forward sampling -------------------------------
    rng = np.random.default_rng(seed)
    codes, elapsed = _timed(lambda: model.sample_codes(n_candidates, rng))
    record("sample", elapsed, n_candidates)

    # --- stage 2: code matrix → addresses ---------------------------
    rng = np.random.default_rng(seed + 1)
    if hasattr(encoder, "decode_to_set"):
        decoded, elapsed = _timed(lambda: encoder.decode_to_set(codes, rng))
    else:  # seed path: Python-int assembly + hex re-parse
        def _seed_decode():
            values = encoder.decode_matrix(codes, rng)
            return AddressSet.from_ints(
                values, width=encoder.width, already_truncated=True
            )

        decoded, elapsed = _timed(_seed_decode)
    record("decode", elapsed, n_candidates)

    # --- stage 3: dedup against the training set --------------------
    if hasattr(decoded, "contains_rows"):
        _, elapsed = _timed(lambda: train.contains_rows(decoded))
    else:  # seed path: per-address Python set membership
        def _seed_dedup():
            training = set(train.to_ints())
            return [v in training for v in decoded.to_ints()]

        _, elapsed = _timed(_seed_dedup)
    record("dedup", elapsed, n_candidates)

    # --- stage 4: end-to-end generate_set ---------------------------
    rng = np.random.default_rng(seed + 2)
    exclude = set(train.to_ints())
    generated, elapsed = _timed(
        lambda: model.generate_set(n_candidates, rng, exclude=exclude)
    )
    record("end_to_end", elapsed, len(generated))

    return {
        "generated": len(generated),
        "stages": stages,
        "scan": measure_scan_stages(
            network, generated, n_candidates, train_size=train_size, seed=seed
        ),
    }


#: Subsample size for the in-harness scalar oracle reference (the
#: per-int ``ping()`` loop is ~3 orders of magnitude slower, so it is
#: timed on a slice and reported as extrapolated addr/s).
SCALAR_ORACLE_SAMPLE = 50_000

#: Probe budget / round size of the adaptive-campaign stage.
CAMPAIGN_BUDGET = 150_000
CAMPAIGN_ROUND = 50_000


def measure_scan_stages(
    network,
    candidates,
    n_candidates: int,
    train_size: int = TRAIN_SIZE,
    seed: int = 0,
) -> Dict:
    """Time the scan-side §5.5 stages: oracle sweep, full experiment,
    multi-round adaptive campaign.

    ``candidates`` is the pre-generated :class:`AddressSet` batch from
    the generation stages (the oracle timing should not re-pay for
    generation).
    """
    from repro.scan.campaign import run_campaign
    from repro.scan.evaluate import scan_experiment
    from repro.scan.responder import SimulatedResponder

    population = network.population(seed)
    responder = SimulatedResponder(
        population,
        ping_rate=network.ping_rate,
        rdns_rate=network.rdns_rate,
        seed=seed,
    )
    stages: Dict[str, Dict] = {}

    # --- oracle: full ping sweep over the deployed population -------
    # Every member pays the keyed hash — the per-hit cost of scoring,
    # and the whole of the seed's per-int ``responding_population``
    # loop.  A fresh responder is timed so no lazy cache is pre-warmed.
    cold = SimulatedResponder(
        population,
        ping_rate=network.ping_rate,
        rdns_rate=network.rdns_rate,
        seed=seed,
    )
    if hasattr(cold, "responding_set"):
        _, elapsed = _timed(cold.responding_set)
    else:  # seed path: the per-int loop (returns Python ints)
        _, elapsed = _timed(cold.responding_population)
    stages["oracle"] = {
        "seconds": round(elapsed, 6),
        "addresses_per_second": (
            round(len(population) / elapsed, 1) if elapsed else 0.0
        ),
    }

    # --- scalar reference: the seed's per-int population sweep ------
    members = sorted(set(population.to_ints()))[:SCALAR_ORACLE_SAMPLE]
    responder.ping(0)  # materialize the lazy member set outside timing
    _, elapsed = _timed(lambda: [v for v in members if responder.ping(v)])
    scalar_rate = round(len(members) / elapsed, 1) if elapsed else 0.0
    stages["oracle_scalar_reference"] = {
        "seconds": round(elapsed, 6),
        "sample": len(members),
        "addresses_per_second": scalar_rate,
    }
    if scalar_rate:
        stages["oracle"]["speedup_vs_scalar"] = round(
            stages["oracle"]["addresses_per_second"] / scalar_rate, 2
        )

    # --- oracle over the generated 1M-candidate batch ---------------
    # Mostly non-members for sparse networks: membership-bound, the
    # batch cost ``scan_experiment`` pays three times.  Its scalar
    # reference (cheap Python set misses) is timed on a subsample of
    # the same batch.
    if hasattr(responder, "ping_mask"):
        _, elapsed = _timed(lambda: responder.ping_mask(candidates))
    else:
        values = candidates.to_ints()
        _, elapsed = _timed(lambda: responder.ping_many(values))
    stages["candidate_oracle"] = {
        "seconds": round(elapsed, 6),
        "addresses_per_second": (
            round(len(candidates) / elapsed, 1) if elapsed else 0.0
        ),
    }
    sample = candidates.take(
        np.arange(min(len(candidates), SCALAR_ORACLE_SAMPLE))
    ).to_ints()
    _, elapsed = _timed(lambda: [v for v in sample if responder.ping(v)])
    if elapsed:
        stages["candidate_oracle"]["speedup_vs_scalar"] = round(
            stages["candidate_oracle"]["addresses_per_second"]
            / (len(sample) / elapsed),
            2,
        )

    # --- the complete Table 4 experiment at full scale --------------
    result, elapsed = _timed(
        lambda: scan_experiment(
            network,
            train_size=train_size,
            n_candidates=n_candidates,
            seed=seed,
        )
    )
    stages["scan_experiment"] = {
        "seconds": round(elapsed, 6),
        "n_candidates": result.n_candidates,
        "candidates_per_second": (
            round(result.n_candidates / elapsed, 1) if elapsed else 0.0
        ),
        "found_overall": result.found_overall,
        "new_prefixes64": result.new_prefixes64,
    }

    # --- multi-round adaptive campaign (bootstrap loop) -------------
    train = network.sample(train_size, seed=seed)
    budget = min(CAMPAIGN_BUDGET, n_candidates)
    campaign, elapsed = _timed(
        lambda: run_campaign(
            train,
            responder,
            probe_budget=budget,
            round_size=max(budget // 3, 1),  # at least 3 rounds
            adaptive=True,
            seed=seed,
        )
    )
    stages["adaptive_campaign"] = {
        "seconds": round(elapsed, 6),
        "probes": campaign.total_probes,
        "probes_per_second": (
            round(campaign.total_probes / elapsed, 1) if elapsed else 0.0
        ),
        "rounds": len(campaign.rounds),
        "hits": campaign.total_hits,
        "new_prefixes64": len(campaign.discovered_prefixes64),
    }
    return stages


def measure(
    n_candidates: int,
    networks: Optional[List[str]] = None,
    train_size: int = TRAIN_SIZE,
    seed: int = 0,
) -> Dict:
    """Measure every requested network; return the combined record."""
    return {
        "n_candidates": n_candidates,
        "train_size": train_size,
        "networks": {
            name: measure_network(
                name, n_candidates, train_size=train_size, seed=seed
            )
            for name in (networks or NETWORKS)
        },
    }


def attach_speedups(result: Dict, baseline_path: pathlib.Path = BASELINE_PATH) -> Dict:
    """Add per-stage throughput speedups vs the checked-in seed baseline."""
    if not baseline_path.exists():
        return result
    baseline = json.loads(baseline_path.read_text())
    for name, record in result["networks"].items():
        base_stages = baseline.get("networks", {}).get(name, {}).get("stages", {})
        speedups = {}
        for stage_name, stage in record["stages"].items():
            base = base_stages.get(stage_name)
            if base and base.get("addresses_per_second"):
                speedups[stage_name] = round(
                    stage["addresses_per_second"]
                    / base["addresses_per_second"],
                    2,
                )
        record["speedup_vs_seed"] = speedups
    result["baseline"] = {
        "n_candidates": baseline.get("n_candidates"),
        "path": str(baseline_path.relative_to(REPO_ROOT)),
    }
    return result


def main(argv: Optional[list] = None) -> Dict:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=1_000_000)
    parser.add_argument("--networks", nargs="+", default=NETWORKS)
    parser.add_argument("--train-size", type=int, default=TRAIN_SIZE)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)

    result = measure(
        args.n,
        networks=args.networks,
        train_size=args.train_size,
        seed=args.seed,
    )
    result = attach_speedups(result)
    args.out.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    return result


if __name__ == "__main__":
    main()
