"""Table 5: success rate vs training-set size (S5, R1, C5).

The paper's observation: "a larger training set often does not cause
better scanning performance and can even make it worse" — the success
rate saturates (or degrades) past ~1K training addresses.
"""

from conftest import N_CANDIDATES

from repro.scan.evaluate import training_size_sweep

SIZES = (100, 1000, 10_000)


def test_table5_training_size(benchmark, networks, artifact):
    def run():
        return {
            "S5": training_size_sweep(
                networks["S5"], train_sizes=SIZES,
                n_candidates=N_CANDIDATES, seed=0,
            ),
            "R1": training_size_sweep(
                networks["R1"], train_sizes=SIZES,
                n_candidates=N_CANDIDATES, seed=0,
            ),
            "C5": training_size_sweep(
                networks["C5"], train_sizes=SIZES,
                n_candidates=N_CANDIDATES, prefix_mode=True, seed=0,
            ),
        }

    sweeps = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["Table 5: success rate vs training sample size"]
    lines.append("dataset  " + "".join(f"{s:>9}" for s in SIZES))
    for name, sweep in sweeps.items():
        cells = "".join(
            f"{100 * sweep[s]:>8.2f}%" if s in sweep else "        -"
            for s in SIZES
        )
        lines.append(f"{name:>7}  {cells}")
    artifact("table5_training_size", "\n".join(lines))

    # Shape: going from 1K to 10K training addresses must not yield a
    # large improvement — the paper found flat-to-worse behaviour.
    for name, sweep in sweeps.items():
        if 1000 in sweep and 10_000 in sweep:
            assert sweep[10_000] < sweep[1000] * 1.5, name
        # And every configuration achieves something.
        assert all(rate > 0 for rate in sweep.values()), name
