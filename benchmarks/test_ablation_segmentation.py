"""Ablation: segmentation parameters (DESIGN.md §5).

Section 6 flags the hard-wired /32 cut and the threshold/hysteresis
values as known sensitivities.  This bench sweeps the hysteresis and
toggles the hard cuts on the S1 sample, reporting the segment counts,
and checks the paper's tuning rationale: the default parameters produce
a moderate number of segments (neither one-per-nybble nor one blob).
"""

from repro.core.pipeline import EntropyIP
from repro.core.segmentation import SegmentationConfig


def test_ablation_segmentation(benchmark, networks, artifact):
    sample = networks["S1"].sample(5000, seed=0)

    def run():
        outcomes = {}
        for hysteresis in (0.0, 0.05, 0.2):
            config = SegmentationConfig(hysteresis=hysteresis)
            analysis = EntropyIP.fit(sample, segmentation=config)
            outcomes[f"Th={hysteresis}"] = len(analysis.segments)
        for hard in (True, False):
            config = SegmentationConfig(hard_cut_32=hard, hard_cut_64=hard)
            analysis = EntropyIP.fit(sample, segmentation=config)
            outcomes[f"hard_cuts={hard}"] = len(analysis.segments)
        return outcomes

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    artifact(
        "ablation_segmentation",
        "\n".join(f"{k:>18}: {v} segments" for k, v in outcomes.items()),
    )

    # Higher hysteresis merges segments (monotone non-increasing).
    assert outcomes["Th=0.0"] >= outcomes["Th=0.05"] >= outcomes["Th=0.2"]
    # Hard cuts trade boundaries: they force cuts at bits 32/64 but
    # merge everything inside bits 1-32 into one segment A (S1's two
    # /32s differ in several nybbles, so disabling the cuts actually
    # *adds* segments there — the §6 sensitivity this ablation probes).
    assert outcomes["hard_cuts=True"] != outcomes["hard_cuts=False"]
    # The default lands in a sane range for a 10-segment-ish network.
    assert 4 <= outcomes["Th=0.05"] <= 20
