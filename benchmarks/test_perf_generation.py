"""Generation + scan throughput benchmark (§5.5 at paper scale).

Runs the perf harness at the paper's 1M-candidate scale, writes the
result record (to ``benchmarks/out/`` by default; the committed
repo-root ``BENCH_generation.json`` only when ``REPRO_BENCH_WRITE=1``,
so a loaded-host run can never clobber the tracked perf trajectory),
and asserts the headline properties: a 1M-candidate end-to-end run
finishes far inside the CI budget, the vectorized generation stages
hold their speedups over the checked-in seed baseline, the fused
sample→packed path is bit-identical to — and ≥1.5x faster than — the
retained two-step ``sample_codes``/``decode_to_set`` reference on S1,
the vectorized ``EntropyIP.fit`` holds ≥3x per network and ≥5x
headline over the retained scalar ``_fit_reference`` path (the PR-4
fit-path rewrite), the scan-side oracle sweep holds ≥10x over its
per-int scalar reference, the bucket-table candidate-batch oracle
holds ≥2x over the PR-2 searchsorted path, the sharded engine's
``workers=4`` output is bit-identical to ``workers=1``, the two
AddressSet storage backends return identical verdicts under an
identical 10x-scale insert/lookup schedule, and the steady-state
campaign engine (persistent generation session + incremental
accounting) holds per-round cost ~flat across the steady window of a
100-round campaign and ≥2x end-to-end over the retained re-seeding
reference loop while matching it round for round, and the concurrent
``HitlistService`` facade serves client streams bit-identical to the
serial direct-library path while recording requests/s at p50/p99
request latency (the ``service_throughput`` stage), and the streaming
ingest pipeline lands on the refit-every-batch reference's exact final
model with strictly fewer refits — the drift signal firing on the
feed's renumbering event, not on every batch (the
``streaming_ingest`` stage), and the sharded engine's output is
bit-identical across executor backends and worker counts — serial,
thread, process — with the process executor's scaling gated only on
hosts whose affinity mask grants the cores to observe it (the
``process_parallel`` stage).

With ``REPRO_BENCH_CANDIDATES`` set below the full scale the run is a
smoke pass: the whole pipeline still executes and the structural and
determinism assertions still apply, but throughput gates are skipped —
small batches cannot amortize fixed vectorization overheads, so
asserting ratios there would only measure noise.
"""

import json

from conftest import N_CANDIDATES, TRAIN_SIZE

from perf_generation import (
    SMOKE_THRESHOLD,
    attach_speedups,
    measure,
    record_output_path,
)

#: The acceptance budget for one end-to-end 1M-candidate run.
END_TO_END_BUDGET_SECONDS = 60.0

#: Stages the vectorized rewrite targets, each with its own floor.
#: The headline ≥10× must hold for at least one stage per network
#: (dedup sits at ~25-90×).  The decode floor is deliberately loose:
#: the stage is timed cold (first large decode of the process) and its
#: wall time is dominated by first-touch page faulting — it swings
#: ~0.3-1.4s for identical code on the same idle host — while the
#: fused-path gate below now carries the generation throughput
#: contract on a warm, best-of-two measurement.
VECTORIZED_STAGES = ("decode", "dedup")
MIN_STAGE_SPEEDUPS = {"decode": 2.5, "dedup": 8.0}
MIN_HEADLINE_SPEEDUP = 10.0

#: The fused sample→packed path (``sample_decode_fused``) must beat
#: the retained two-step reference by ≥1.2x on S1 (the pure-throughput
#: network) and be bit-identical on every network at any scale.  The
#: floor was re-anchored from 1.5x: the ratio drifts with host state
#: on this class of VM — ~2.1x at the PR-6 recording, a stable
#: ~1.25-1.4x on the identical unmodified tree measured weeks later —
#: while a real regression (fused no faster than two-step) reads ~1.0x.
MIN_FUSED_SPEEDUP = 1.2
FUSED_GATE_NETWORK = "S1"

#: End-to-end gates: the per-network floor guards noisy CI neighbours;
#: the headline was raised from 5x when the fused pipeline landed
#: (measured S1 ~5.1x, R1 ~6.2x idle).
MIN_END_TO_END_SPEEDUP = 4.0
MIN_END_TO_END_HEADLINE = 5.5

#: The array-native oracle must beat the per-int scalar loop by at
#: least this factor (measured in-harness, not against the seed file).
MIN_ORACLE_SPEEDUP = 10.0

#: The PR-4 fit-path gates: the vectorized ``EntropyIP.fit`` must beat
#: the retained scalar ``_fit_reference`` path by ≥3× on every
#: benchmark network (noisy-machine floor) and by ≥5× on at least one
#: (the acceptance headline; R1/S1 measure ~7.5×/~4.5-5× on an idle
#: host).  Both paths produce bit-identical models — asserted by
#: tests/core/test_fit_golden.py, not here.
MIN_FIT_SPEEDUP = 3.0
MIN_FIT_HEADLINE = 5.0

#: The bucket-table membership probe must beat the PR-2 searchsorted
#: index by at least this factor on the same candidate batch.
MIN_BUCKET_SPEEDUP = 2.0

#: Steady-state campaign gates: across a 100-round fixed-size campaign
#: the persistent-session engine must (a) hold per-round cost ~flat
#: over the steady-state window (the second half of the rounds: mean
#: of its last 5 rounds at most 1.5x the mean of its first 5 — the
#: re-seeding loop it replaced degrades monotonically with campaign
#: age) and (b) finish the whole campaign at least 2x faster than the
#: retained re-seeding reference loop on the same seed (measured
#: ~5.5-7.5x on this class of host).
MAX_STEADY_FLATNESS = 1.5
MIN_STEADY_SPEEDUP = 2.0
MIN_STEADY_WINDOW_ROUNDS = 25

#: Serving-facade gate: the concurrent service wall time for the full
#: request schedule may cost at most this multiple of the serial
#: direct-library wall time for the same row volume (the queue and
#: session bookkeeping ride on top of GIL-bound draws, so ~1.0 is the
#: expectation on an idle host; measured ~0.9-1.1).  Bit-identity of
#: every served stream to the direct path is asserted at any scale.
MAX_SERVICE_OVERHEAD = 1.5

#: Streaming-ingest gates.  At any scale (all deterministic): the
#: pipeline's final model must be bit-identical to the refit-every-batch
#: reference's (``digest_equal_to_reference``), it must pay strictly
#: fewer refits than the reference's one-per-batch, and the drift signal
#: must actually fire on the renumbering event (``drift_refits >= 1``).
#: At full scale: drift-triggered refits stay at or below half the
#: reference count (measured 1/15 on an idle host — one refit at the
#: event, quiescent through churn) and sustained ingest throughput
#: clears a loose floor (measured ~125k rows/s; the floor guards
#: order-of-magnitude regressions, not host noise).
MAX_INGEST_REFIT_FRACTION = 0.5
MIN_INGEST_ROWS_PER_SECOND = 2_000.0

#: Process-parallel gates.  Bit-identity of every backend/worker run
#: to the serial reference is asserted at ANY scale — it is the
#: engine's determinism contract, not a throughput property.  The
#: scaling gate — the process executor at 4 workers at least 2x the
#: serial reference, and actually running on processes rather than a
#: degraded thread fallback — arms only at full scale AND when the
#: record's ``available_cpus`` (the host's affinity mask at measure
#: time) grants at least 4 cores: a 1-2 core runner cannot observe
#: multi-core scaling, only fork overhead.
PROCESS_PARALLEL_MIN_CORES = 4
MIN_PROCESS_SCALING_AT_4 = 2.0

#: Fault-harness gate.  The ``fault_point`` probes woven into the
#: executor hot path must be invisible: the armed-but-never-matching
#: draw may cost at most this multiple of the disarmed draw (expected
#: ~1.0 — the probe is one global read disarmed, one site lookup per
#: shard armed; the ceiling absorbs scheduler noise, not real cost),
#: and the two draws must be bit-identical at any scale.
MAX_FAULT_OVERHEAD = 1.25

#: Throughput gates only run at (near) paper scale; below the shared
#: smoke threshold the run is a smoke pass.
FULL_SCALE = N_CANDIDATES >= SMOKE_THRESHOLD


def test_perf_generation(benchmark, artifact):
    def run():
        return attach_speedups(
            measure(N_CANDIDATES, train_size=TRAIN_SIZE, seed=0)
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    record_output_path().write_text(json.dumps(result, indent=2) + "\n")
    lines = [f"Generation throughput (train={TRAIN_SIZE}, n={N_CANDIDATES})"]
    for name, record in result["networks"].items():
        for stage, data in record["stages"].items():
            speedup = record.get("speedup_vs_seed", {}).get(stage)
            suffix = f"  ({speedup}x vs seed)" if speedup else ""
            if not suffix and data.get("speedup_vs_reference"):
                suffix = f"  ({data['speedup_vs_reference']}x vs reference)"
            if not suffix and data.get("speedup_vs_twostep"):
                suffix = (
                    f"  ({data['speedup_vs_twostep']}x vs two-step, "
                    f"bit_identical={data['bit_identical']})"
                )
            lines.append(
                f"{name:>4} {stage:>10}: "
                f"{data['addresses_per_second']:>12,.0f} addr/s"
                f"{suffix}"
            )
        for stage, data in record.get("scan", {}).items():
            rate = (
                data.get("addresses_per_second")
                or data.get("candidates_per_second")
                or data.get("probes_per_second")
                or 0.0
            )
            speedup = data.get("speedup_vs_searchsorted") or data.get(
                "speedup_vs_scalar"
            )
            reference = (
                "searchsorted"
                if "speedup_vs_searchsorted" in data
                else "scalar"
            )
            suffix = f"  ({speedup}x vs {reference})" if speedup else ""
            lines.append(
                f"{name:>4} {'scan/' + stage:>42}: "
                f"{rate:>12,.0f} addr/s in {data['seconds']:.3f}s{suffix}"
            )
        workers = record.get("workers")
        if workers:
            lines.append(
                f"{name:>4} {'workers=4':>10}: "
                f"{workers['addresses_per_second']:>12,.0f} addr/s "
                f"(bit_identical={workers['bit_identical']})"
            )
    backends = result.get("backends")
    if backends:
        for backend_name in ("memory", "sharded64"):
            data = backends[backend_name]
            lines.append(
                f"back {backend_name:>10}: "
                f"{data['insert_rows_per_second']:>12,.0f} rows/s insert "
                f"({backends['rows_offered']:,} offered, "
                f"worst batch {data['worst_batch_seconds']:.3f}s, "
                f"identical={backends['identical']})"
            )
    service = result.get("service_throughput")
    if service:
        lines.append(
            f"serve {service['clients']:>2} clients: "
            f"{service['requests_per_second']:>12,.1f} req/s "
            f"({service['rows_per_second']:,.0f} rows/s, "
            f"p50={service['p50_ms']}ms p99={service['p99_ms']}ms, "
            f"overhead={service['overhead_vs_direct']}x vs direct, "
            f"identical={service['identical_to_direct']})"
        )
    ingest = result.get("streaming_ingest")
    if ingest:
        lines.append(
            f"ingest {ingest['batches']:>2} batches: "
            f"{ingest['rows_per_second']:>12,.0f} rows/s "
            f"({ingest['refits']} refits vs "
            f"{ingest['reference_refits']} refit-every-batch, "
            f"mean refit {ingest['mean_refit_seconds']:.3f}s, "
            f"{ingest['speedup_vs_refit_every_batch']}x, "
            f"digest_equal={ingest['digest_equal_to_reference']})"
        )
    process_parallel = result.get("process_parallel")
    if process_parallel:
        parts = ", ".join(
            f"{label}={run['seconds']:.3f}s"
            + (
                f" ({run['speedup_vs_serial']}x, {run['active_backend']})"
                if "speedup_vs_serial" in run
                else ""
            )
            for label, run in process_parallel["runs"].items()
        )
        lines.append(
            f"exec {process_parallel['available_cpus']:>2} cpus: {parts} "
            f"(bit_identical={process_parallel['bit_identical']})"
        )
    fault = result.get("fault_overhead")
    if fault:
        lines.append(
            f"fault sites: "
            f"{fault['addresses_per_second']:>12,.0f} addr/s disarmed "
            f"(armed/disarmed {fault['overhead_ratio']}x, "
            f"probe {fault['disarmed_site_ns']}ns, "
            f"bit_identical={fault['bit_identical']})"
        )
    artifact("perf_generation", "\n".join(lines))

    for name, record in result["networks"].items():
        assert record["generated"] == N_CANDIDATES, name
        scan = record["scan"]
        # Structural assertions hold at any scale.
        assert scan["scan_experiment"]["n_candidates"] > 0, name
        assert scan["adaptive_campaign"]["rounds"] >= 2, (
            name,
            scan["adaptive_campaign"],
        )
        # The sharded engine must be bit-identical at any scale.
        assert record["workers"]["bit_identical"], name
        # So must the fused sample→packed path vs the retained
        # two-step reference (same RNG stream, same rows).
        fused = record["stages"].get("sample_decode_fused")
        assert fused is not None and fused["bit_identical"], (name, fused)
        # The steady-state session engine must match the re-seeding
        # reference round for round at any scale (correctness, not
        # throughput).
        assert scan["campaign_steady_state"]["identical_to_reseed"], (
            name,
            scan["campaign_steady_state"],
        )

        if not FULL_SCALE:
            continue
        assert (
            record["stages"]["end_to_end"]["seconds"]
            * (1_000_000 / N_CANDIDATES)
            < END_TO_END_BUDGET_SECONDS
        ), name
        speedups = record.get("speedup_vs_seed")
        # The baseline file travels with the repo, so speedups exist.
        assert speedups, "missing benchmarks/BENCH_baseline_seed.json"
        for stage in VECTORIZED_STAGES:
            assert speedups[stage] >= MIN_STAGE_SPEEDUPS[stage], (
                name,
                stage,
                speedups,
            )
        assert (
            max(speedups[stage] for stage in VECTORIZED_STAGES)
            >= MIN_HEADLINE_SPEEDUP
        ), (name, speedups)
        assert speedups["end_to_end"] >= MIN_END_TO_END_SPEEDUP, (
            name,
            speedups,
        )

        # Fused-path throughput gate on the pure-throughput network.
        if name == FUSED_GATE_NETWORK:
            assert fused["speedup_vs_twostep"] >= MIN_FUSED_SPEEDUP, (
                name,
                fused,
            )

        # Scan-side gates: the population sweep must clear 10x over the
        # per-int scalar reference, and the bucket-table candidate
        # oracle must clear 2x over the searchsorted reference.
        assert (
            scan["oracle"]["speedup_vs_scalar"] >= MIN_ORACLE_SPEEDUP
        ), (name, scan["oracle"])
        assert (
            scan["candidate_oracle"]["speedup_vs_searchsorted"]
            >= MIN_BUCKET_SPEEDUP
        ), (name, scan["candidate_oracle"])

        # Fit-path gate: the vectorized EntropyIP.fit vs the retained
        # scalar reference, measured in-harness on the same training
        # set (best of three each).
        assert (
            record["stages"]["fit"]["speedup_vs_reference"]
            >= MIN_FIT_SPEEDUP
        ), (name, record["stages"]["fit"])

        # Steady-state campaign gates: enough rounds to observe the
        # cost curve, ~flat per-round time across the steady window,
        # and ≥2x end-to-end over the re-seeding reference loop.
        steady = scan["campaign_steady_state"]
        assert steady["window_rounds"] >= MIN_STEADY_WINDOW_ROUNDS, (
            name,
            steady,
        )
        assert steady["round_flatness_ratio"] <= MAX_STEADY_FLATNESS, (
            name,
            steady,
        )
        assert steady["speedup_vs_reseed"] >= MIN_STEADY_SPEEDUP, (
            name,
            steady,
        )

    # Both storage backends must agree verdict for verdict under the
    # identical 10x-scale insert/lookup schedule, at any scale.
    backends = result.get("backends")
    assert backends is not None and backends["identical"], backends
    assert backends["distinct_rows"] > 0, backends

    # The concurrent serving facade must serve every client stream
    # bit-identical to the serial direct-library path, at any scale.
    service = result.get("service_throughput")
    assert service is not None and service["identical_to_direct"], service

    # Streaming ingest: the incremental pipeline must land on the
    # reference's exact final model with strictly fewer refits, and the
    # drift signal must fire on the renumbering event — all
    # deterministic, so asserted at any scale.
    ingest = result.get("streaming_ingest")
    assert ingest is not None and ingest["digest_equal_to_reference"], ingest
    assert ingest["refits"] < ingest["reference_refits"], ingest
    assert ingest["drift_refits"] >= 1, ingest

    # The executor backend must never change the stream: every
    # backend/worker run bit-identical to the serial reference, at any
    # scale.  The scaling gate arms only on multi-core hosts.
    process_parallel = result.get("process_parallel")
    assert process_parallel is not None, "process_parallel stage missing"
    assert process_parallel["bit_identical"], process_parallel
    if (
        FULL_SCALE
        and process_parallel["available_cpus"] >= PROCESS_PARALLEL_MIN_CORES
    ):
        run = process_parallel["runs"]["process_4"]
        assert run["active_backend"] == "process", run
        assert run["speedup_vs_serial"] >= MIN_PROCESS_SCALING_AT_4, run

    # The fault-injection probes must never touch the stream (any
    # scale) and must cost nothing measurable (full scale).
    fault = result.get("fault_overhead")
    assert fault is not None, "fault_overhead stage missing"
    assert fault["bit_identical"], fault
    if FULL_SCALE:
        assert fault["overhead_ratio"] <= MAX_FAULT_OVERHEAD, fault
    if FULL_SCALE:
        assert (
            ingest["refits"]
            <= ingest["reference_refits"] * MAX_INGEST_REFIT_FRACTION
        ), ingest
        assert (
            ingest["rows_per_second"] >= MIN_INGEST_ROWS_PER_SECOND
        ), ingest

    if FULL_SCALE:
        # Latency accounting must be live and sane, and the facade may
        # not cost more than the loose overhead ceiling over direct.
        assert service["requests_per_second"] > 0, service
        assert service["p99_ms"] >= service["p50_ms"] > 0, service
        assert service["overhead_vs_direct"] <= MAX_SERVICE_OVERHEAD, service

    if FULL_SCALE:
        # The ≥5x fit headline must hold on at least one network.
        assert any(
            record["stages"]["fit"]["speedup_vs_reference"]
            >= MIN_FIT_HEADLINE
            for record in result["networks"].values()
        ), {
            name: record["stages"]["fit"].get("speedup_vs_reference")
            for name, record in result["networks"].items()
        }
        # The ≥5x end-to-end headline must hold somewhere (it holds on
        # every measured network on a quiet machine; the per-network
        # floor above guards regressions on noisy ones).
        assert any(
            record["speedup_vs_seed"]["end_to_end"] >= MIN_END_TO_END_HEADLINE
            for record in result["networks"].values()
        ), {
            name: record["speedup_vs_seed"]["end_to_end"]
            for name, record in result["networks"].items()
        }
