"""Generation + scan throughput benchmark (§5.5 at paper scale).

Runs the perf harness at the paper's 1M-candidate scale, writes the
result to ``BENCH_generation.json`` at the repo root (so the perf
trajectory is tracked across PRs), and asserts the headline properties:
a 1M-candidate end-to-end run finishes far inside the CI budget, the
vectorized generation stages hold a ≥10× speedup over the checked-in
seed baseline, and the scan-side oracle sweep holds a ≥10× speedup over
its in-harness scalar (per-int ``ping()``) reference.
"""

import json

from conftest import N_CANDIDATES, TRAIN_SIZE

from perf_generation import DEFAULT_OUT, attach_speedups, measure

#: The acceptance budget for one end-to-end 1M-candidate run.
END_TO_END_BUDGET_SECONDS = 60.0

#: Stages the vectorized rewrite targets.  Every stage must clear the
#: floor even on a noisy CI machine; the headline ≥10× must hold for at
#: least one stage per network (dedup sits at ~25-30×, decode ~10-15×).
VECTORIZED_STAGES = ("decode", "dedup")
MIN_STAGE_SPEEDUP = 8.0
MIN_HEADLINE_SPEEDUP = 10.0

#: The array-native oracle must beat the per-int scalar loop by at
#: least this factor (measured in-harness, not against the seed file).
MIN_ORACLE_SPEEDUP = 10.0


def test_perf_generation(benchmark, artifact):
    def run():
        return attach_speedups(
            measure(N_CANDIDATES, train_size=TRAIN_SIZE, seed=0)
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    DEFAULT_OUT.write_text(json.dumps(result, indent=2) + "\n")
    lines = [f"Generation throughput (train={TRAIN_SIZE}, n={N_CANDIDATES})"]
    for name, record in result["networks"].items():
        for stage, data in record["stages"].items():
            speedup = record.get("speedup_vs_seed", {}).get(stage)
            suffix = f"  ({speedup}x vs seed)" if speedup else ""
            lines.append(
                f"{name:>4} {stage:>10}: "
                f"{data['addresses_per_second']:>12,.0f} addr/s"
                f"{suffix}"
            )
        for stage, data in record.get("scan", {}).items():
            rate = (
                data.get("addresses_per_second")
                or data.get("candidates_per_second")
                or data.get("probes_per_second")
                or 0.0
            )
            speedup = data.get("speedup_vs_scalar")
            suffix = f"  ({speedup}x vs scalar)" if speedup else ""
            lines.append(
                f"{name:>4} {'scan/' + stage:>26}: "
                f"{rate:>12,.0f} addr/s in {data['seconds']:.3f}s{suffix}"
            )
    artifact("perf_generation", "\n".join(lines))

    for name, record in result["networks"].items():
        assert record["generated"] == N_CANDIDATES, name
        assert (
            record["stages"]["end_to_end"]["seconds"]
            * (1_000_000 / N_CANDIDATES)
            < END_TO_END_BUDGET_SECONDS
        ), name
        speedups = record.get("speedup_vs_seed")
        # The baseline file travels with the repo, so speedups exist.
        assert speedups, "missing benchmarks/BENCH_baseline_seed.json"
        for stage in VECTORIZED_STAGES:
            assert speedups[stage] >= MIN_STAGE_SPEEDUP, (name, stage, speedups)
        assert (
            max(speedups[stage] for stage in VECTORIZED_STAGES)
            >= MIN_HEADLINE_SPEEDUP
        ), (name, speedups)

        # Scan-side stages: the oracle sweep must clear 10x over the
        # per-int scalar reference, and the complete 1M-candidate
        # experiment plus a multi-round adaptive campaign must have run.
        scan = record["scan"]
        assert (
            scan["oracle"]["speedup_vs_scalar"] >= MIN_ORACLE_SPEEDUP
        ), (name, scan["oracle"])
        assert scan["scan_experiment"]["n_candidates"] > 0, name
        assert scan["adaptive_campaign"]["rounds"] >= 2, (
            name,
            scan["adaptive_campaign"],
        )
