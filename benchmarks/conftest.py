"""Shared benchmark fixtures: cached populations and artifact output.

Every benchmark regenerates one table or figure of the paper.  Each
writes its rendered rows/series to ``benchmarks/out/<name>.txt`` (and
prints them), so a bench run leaves a complete, diffable set of
artifacts mirroring the paper's evaluation section.

Scaling note: the paper trains on 1K addresses and generates 1M
candidates per network, and the benchmarks now run at that full scale —
the vectorized generation pipeline (BN inverse-CDF sampling, batched
decode, whole-row dedup) makes a 1M-candidate run a couple of seconds
per network.  ``REPRO_BENCH_CANDIDATES`` overrides the scale for quick
local runs.
"""

import os
import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"

#: Candidates generated per scanning/prediction experiment (paper: 1M).
N_CANDIDATES = int(os.environ.get("REPRO_BENCH_CANDIDATES", 1_000_000))

#: Training set size (same as the paper).
TRAIN_SIZE = 1000


@pytest.fixture(scope="session")
def artifact():
    """Writer: artifact('table4', text) → benchmarks/out/table4.txt."""
    OUT_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> str:
        path = OUT_DIR / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n=== {name} ===\n{text}")
        return str(path)

    return write


@pytest.fixture(scope="session")
def networks():
    """All 16 synthetic networks, built once."""
    from repro.datasets.networks import all_networks

    return {n.name: n for n in all_networks()}


@pytest.fixture(scope="session")
def jp_analysis(networks):
    """Fitted Entropy/IP model of the Fig. 1 Japanese telco sample."""
    from repro.core.pipeline import EntropyIP

    sample = networks["JP"].sample(5000, seed=0)
    return EntropyIP.fit(sample)


@pytest.fixture(scope="session")
def s1_analysis(networks):
    """Fitted model of the S1 server sample (Figs. 4, 5, 7; Table 3)."""
    from repro.core.pipeline import EntropyIP

    sample = networks["S1"].sample(8000, seed=0)
    return EntropyIP.fit(sample)
