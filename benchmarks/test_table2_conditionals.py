"""Table 2: P(J = 00000...) conditional on its BN parent segments.

The paper's Table 2 tabulates the probability that segment J equals the
zeros value for each joint configuration of its direct parents (H and
C), showing e.g. P = 100% for (H=0, C=10) and near zero off-pattern.
"""

import numpy as np


def test_table2_conditional_probabilities(benchmark, jp_analysis, artifact):
    wide = max(
        jp_analysis.encoder.mined_segments,
        key=lambda m: (m.segment.first_nybble >= 17) * m.segment.nybble_count,
    )
    label = wide.segment.label
    zero_index = next(
        i for i, v in enumerate(wide.values) if v.low == 0 and not v.is_range
    )
    parents = list(jp_analysis.model.network.parents(label))

    def compute():
        return jp_analysis.model.conditional_probability_table(
            label, zero_index, parents
        )

    table = benchmark.pedantic(compute, rounds=1, iterations=1)

    mined_by_label = {
        m.segment.label: m for m in jp_analysis.encoder.mined_segments
    }
    lines = [
        f"P({label} = {wide.values[zero_index].code} = 00000...) "
        f"conditional on parents {parents}:"
    ]
    for states, probability in sorted(table.items()):
        names = ", ".join(
            f"{p}={mined_by_label[p].values[s].format_value(mined_by_label[p].segment.nybble_count)}"
            for p, s in zip(parents, states)
        )
        lines.append(f"  {names:<40} {100 * probability:6.2f}%")
    artifact("table2_conditionals", "\n".join(lines))

    probabilities = np.array(list(table.values()))
    # Shape: strong contrast across parent configurations — the static
    # plan forces J to zeros (≈100%), other plans almost never do.
    assert probabilities.max() > 0.9
    assert probabilities.min() < 0.2
