"""Fig. 4: the value histogram of S1's segment C with mined annotations.

The paper's scatter plot shows popular point values (C1-C5, found by the
outlier step) and a uniformly-dense range (C6, found by the histogram
DBSCAN) inside a 2-nybble segment.
"""

from repro.viz.figures import render_segment_histogram


def test_fig4_mining_histogram(benchmark, s1_analysis, artifact):
    mined_c = next(
        m for m in s1_analysis.encoder.mined_segments
        if m.segment.label == "C"
    )

    text = benchmark.pedantic(
        lambda: render_segment_histogram(mined_c, s1_analysis),
        rounds=1,
        iterations=1,
    )
    artifact("fig4_mining_histogram", text)

    # Shape: the segment mines both point values and at least one range
    # (the paper's C1..C5 points + C6 range).
    points = [v for v in mined_c.values if not v.is_range]
    ranges = [v for v in mined_c.values if v.is_range]
    assert len(points) >= 2
    assert len(ranges) >= 1
    # The dominant point is 0x00 at ~67%.
    top = max(mined_c.values, key=lambda v: v.frequency)
    assert top.low == 0 and not top.is_range
    # Ranges cover meaningfully wide spans of the 256-value space.
    assert max(r.span() for r in ranges) >= 16
