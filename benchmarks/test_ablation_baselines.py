"""Ablation: Entropy/IP vs the prior-work baselines (§1, §2).

Two comparisons the paper makes in prose, quantified:

1. **addr6 statelessness (§1).**  The stateless classifier calls the
   paper's example address randomized even though a thousand siblings
   share its /104; Entropy/IP's set-level entropy sees the structure.

2. **IID-pattern scanning (Ullrich et al., §2).**  The pattern baseline
   models only the bottom 64 bits and must be handed known /64
   prefixes, so it can never discover new subnets; Entropy/IP models
   the whole address and does.  We run both against R1 and compare hit
   rates and new-/64 counts.
"""

import numpy as np

from repro.baselines.addr6 import IIDClass, classify_address
from repro.baselines.iid_patterns import IIDPatternModel
from repro.core.pipeline import EntropyIP
from repro.ipv6.address import IPv6Address
from repro.ipv6.sets import AddressSet
from repro.scan.generator import prefixes64
from repro.scan.responder import SimulatedResponder
from repro.stats.entropy import nybble_entropies


def test_ablation_addr6_statelessness(benchmark, artifact):
    # The §1 example: /104-structured addresses with variable low bits.
    rng = np.random.default_rng(3)
    base = IPv6Address("2001:db8:221:ffff:ffff:ffff:ff00:0").value
    siblings = AddressSet.from_ints(
        [base | int(v) for v in rng.choice(1 << 24, 1000, replace=False)]
    )
    example = IPv6Address("2001:db8:221:ffff:ffff:ffff:ffc0:122a")

    def run():
        verdict = classify_address(example)
        entropy = nybble_entropies(siblings)
        structured_nybbles = int((entropy == 0).sum())
        return verdict, structured_nybbles

    verdict, structured_nybbles = benchmark.pedantic(run, rounds=1, iterations=1)
    artifact(
        "ablation_addr6",
        "\n".join(
            [
                f"address:              {example}",
                f"addr6 (stateless):    {verdict.value}  <-- misclassified",
                f"Entropy/IP (context): {structured_nybbles}/32 nybbles "
                "constant across the sibling set -> structured /104",
            ]
        ),
    )
    # addr6 is wrong (calls it randomized); the entropy profile is not.
    assert verdict is IIDClass.RANDOMIZED
    assert structured_nybbles >= 26


def test_ablation_iid_pattern_baseline(benchmark, networks, artifact):
    network = networks["R1"]
    population = network.population(0)
    rng = np.random.default_rng(5)
    train = population.sample(1000, rng)
    responder = SimulatedResponder(
        population, ping_rate=network.ping_rate,
        rdns_rate=network.rdns_rate, seed=0,
    )
    n_candidates = 20_000

    def run():
        # Entropy/IP: whole-address model, no prefix knowledge needed.
        analysis = EntropyIP.fit(train)
        ours = analysis.model.generate(
            n_candidates, rng, exclude=set(train.to_ints())
        )
        # Baseline: IID patterns x the /64s seen in training (its
        # required prior knowledge).
        pattern_model = IIDPatternModel.fit(train)
        known_64s = sorted(prefixes64(train.to_ints(), 32))
        theirs = pattern_model.generate_targets(known_64s, n_candidates, rng)
        return ours, theirs

    ours, theirs = benchmark.pedantic(run, rounds=1, iterations=1)

    train_64s = prefixes64(train.to_ints(), 32)

    def score(candidates):
        alive = set(responder.ping_many(candidates))
        new_64s = prefixes64(sorted(alive), 32) - train_64s
        return len(alive), len(new_64s), len(candidates)

    ours_alive, ours_new, ours_n = score(ours)
    theirs_alive, theirs_new, theirs_n = score(theirs)
    artifact(
        "ablation_iid_patterns",
        "\n".join(
            [
                f"R1, train=1000, candidates={n_candidates}",
                f"Entropy/IP:   {ours_alive:>6} alive of {ours_n}, "
                f"{ours_new:>5} new /64s",
                f"IID patterns: {theirs_alive:>6} alive of {theirs_n}, "
                f"{theirs_new:>5} new /64s (needs known /64s)",
            ]
        ),
    )

    # The baseline can only revisit training /64s: zero new subnets.
    assert theirs_new == 0
    # Entropy/IP discovers subnets the baseline structurally cannot.
    assert ours_new > 100
