"""Fig. 8: brief entropy-vs-ACR panels for S2-S5, R2-R5, C2-C5.

One compact panel per dataset, plus assertions of the per-dataset
structural observations of §5.2-§5.4.
"""

import numpy as np

from repro.core.pipeline import EntropyIP
from repro.viz.ascii import sparkline


def test_fig8_panels(benchmark, networks, artifact):
    names = ["S2", "S3", "S4", "S5", "R2", "R3", "R4", "R5",
             "C2", "C3", "C4", "C5"]

    def analyze():
        analyses = {}
        for name in names:
            sample = networks[name].sample(4000, seed=0)
            analyses[name] = EntropyIP.fit(sample)
        return analyses

    analyses = benchmark.pedantic(analyze, rounds=1, iterations=1)

    lines = ["Fig 8: entropy (top) and 4-bit ACR (bottom) per dataset"]
    for name in names:
        analysis = analyses[name]
        lines.append(
            f"{name}  H_S={analysis.total_entropy():5.1f}  "
            f"E {sparkline(analysis.entropy())}"
        )
        lines.append(f"            A {sparkline(analysis.acr())}")
    artifact("fig8_panels", "\n".join(lines))

    entropy = {name: analyses[name].entropy() for name in names}

    # S3: one /96 worldwide → near-zero entropy through bit 96.
    assert float(entropy["S3"][8:24].max()) < 0.1
    # S4: beyond bits 32-48 structure, only the last 32 bits vary.
    assert float(entropy["S4"][12:24].max()) < 0.1
    assert float(entropy["S4"][28:].mean()) > 0.3
    # R2: bottom 64 bits end in 1 or 2 → near-zero IID entropy except
    # the last nybble.
    assert float(entropy["R2"][16:31].max()) < 0.1
    assert entropy["R2"][31] > 0.2  # binary 1/2 → log2/log16 ≈ 0.25
    # R3: last 12 bits pseudo-random, middle zeros.
    assert float(entropy["R3"][29:].min()) > 0.9
    assert float(entropy["R3"][16:28].max()) < 0.1
    # Clients: pseudo-random IIDs → entropy ≈ 1, ACR ≈ 0 in low 64 bits.
    for name in ("C2", "C3", "C4", "C5"):
        iid_entropy = entropy[name][17:]
        assert float(np.median(iid_entropy)) > 0.9, name
        assert float(analyses[name].acr()[20:].mean()) < 0.15, name
    # C2 (mobile, gateway-assigned IIDs): no u-bit dip at bits 68-72.
    assert entropy["C2"][17] > 0.95
    # C3-C5 use privacy IIDs → the u-bit dip is visible.
    for name in ("C3", "C4", "C5"):
        assert entropy[name][17] < 0.95, name
