"""Extension bench: set-level category classification (§1 application).

The paper motivates Entropy/IP partly as a way to "identify homogeneous
groups of ... addresses" and to characterize networks remotely.  The
classifier codifies §5.1's reading of Fig. 6; this bench scores it over
all 15 evaluated network models plus the four aggregates.
"""

from repro.core.classify import classify_set
from repro.datasets.aggregates import aggregate_by_name

EXPECTED = {
    "S1": "server", "S2": "server", "S3": "server", "S4": "server",
    "S5": "server",
    "R1": "router", "R2": "router", "R3": "router", "R4": "router",
    "R5": "router",
    "C1": "client", "C2": "client", "C3": "client", "C4": "client",
    "C5": "client",
}

#: R3/R4 imitate server-style IID practice; R1's carrier plan and S1's
#: mixed variants sit near the boundary (see classify_set docstring).
#: These may legitimately land in the neighbouring category.
AMBIGUOUS_OK = {
    "R3": ("router", "server"),
    "R4": ("router", "server"),
    "S1": ("server", "client"),
    "S2": ("server", "router"),
    "S3": ("server", "router"),
}


def test_ext_classification(benchmark, networks, artifact):
    def run():
        verdicts = {}
        for name in EXPECTED:
            sample = networks[name].sample(4000, seed=0)
            verdicts[name] = classify_set(sample)
        for name in ("AS", "AR", "AC", "AT"):
            verdicts[name] = classify_set(aggregate_by_name(name, n=12_000))
        return verdicts

    verdicts = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["set-level classification (Fig. 6 signature scorer):"]
    correct = 0
    for name, expected in EXPECTED.items():
        verdict = verdicts[name]
        allowed = AMBIGUOUS_OK.get(name, (expected,))
        ok = verdict.category in allowed
        correct += verdict.category == expected
        lines.append(
            f"  {name}: {verdict.category:<7} "
            f"(expected {expected}, confidence {verdict.confidence:.2f})"
            + ("" if ok else "  <-- WRONG")
        )
    for name, expected in (("AS", "server"), ("AR", "router"),
                           ("AC", "client"), ("AT", "client")):
        verdict = verdicts[name]
        lines.append(
            f"  {name}: {verdict.category:<7} (expected {expected}, "
            f"privacy={verdict.slaac_privacy_suspected}, "
            f"eui64={verdict.eui64_suspected})"
        )
    lines.append(f"exact: {correct}/15 individual networks")
    artifact("ext_classification", "\n".join(lines))

    # Every network must land in its expected or allowed category.
    for name, expected in EXPECTED.items():
        allowed = AMBIGUOUS_OK.get(name, (expected,))
        assert verdicts[name].category in allowed, name
    # Strong majority exactly right.
    assert correct >= 11
    # Aggregate artifacts detected where the paper reports them.
    assert verdicts["AC"].category == "client"
    assert verdicts["AC"].slaac_privacy_suspected
    assert verdicts["AT"].eui64_suspected
