"""Table 1: dataset inventory (unique IPv6 addresses per dataset).

The paper's Table 1 lists unique-address counts per dataset and source;
our synthetic populations stand in for them (DESIGN.md §2).  The bench
builds every population and prints the size table, asserting the
category-level orderings the paper's data shows (client sets dwarf
router sets; aggregates cover many /32s).
"""

from repro.datasets.aggregates import aggregate_by_name
from repro.ipv6.prefix import count_prefixes


def test_table1_dataset_inventory(benchmark, networks, artifact):
    def build():
        sizes = {}
        for name, network in networks.items():
            sizes[name] = len(network.population(0))
        aggregates = {
            name: aggregate_by_name(name, n=20_000)
            for name in ("AS", "AR", "AC", "AT")
        }
        return sizes, aggregates

    sizes, aggregates = benchmark.pedantic(build, rounds=1, iterations=1)

    lines = ["Type     ID   unique IPs"]
    for name in ("S1", "S2", "S3", "S4", "S5"):
        lines.append(f"Servers  {name}  {sizes[name]:>9,}")
    for name in ("R1", "R2", "R3", "R4", "R5"):
        lines.append(f"Routers  {name}  {sizes[name]:>9,}")
    for name in ("C1", "C2", "C3", "C4", "C5", "JP"):
        lines.append(f"Clients  {name}  {sizes[name]:>9,}")
    for name, sample in aggregates.items():
        slash32s = count_prefixes(sample.addresses(), 32)
        lines.append(
            f"Aggr.    {name}  {len(sample):>9,}  ({slash32s} /32 prefixes)"
        )
    artifact("table1_datasets", "\n".join(lines))

    # Shape: client populations are the largest, router sets small
    # (paper: C* in the millions-to-billions, R4/R5 in the hundreds).
    assert max(sizes[f"C{i}"] for i in range(1, 6)) > max(
        sizes[f"R{i}"] for i in range(1, 6)
    )
    assert min(sizes.values()) >= 1000
    for sample in aggregates.values():
        assert count_prefixes(sample.addresses(), 32) > 20
