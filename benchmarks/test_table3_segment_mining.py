"""Table 3: full segment-mining results for dataset S1.

The paper's Table 3 lists, per segment, the mined codes with their
values/ranges and empirical frequencies.  We regenerate the table from
the synthetic S1 and assert its structural hallmarks: two /32 values in
A at ~64/36%, the B variant values led by 10 at ~78%, C led by 00, and
a large pseudo-random range dominating the wide IID segment (G14-style).
"""

import pytest

from repro.viz.figures import render_mining_table


def test_table3_segment_mining(benchmark, s1_analysis, artifact):
    text = benchmark.pedantic(
        lambda: render_mining_table(s1_analysis), rounds=1, iterations=1
    )
    artifact("table3_segment_mining", text)

    table = s1_analysis.segment_table()

    # A: exactly two /32 prefixes at ~63.5% / 36.5%.
    assert len(table["A"]) == 2
    frequencies = sorted((f for _, _, f in table["A"]), reverse=True)
    assert frequencies[0] == pytest.approx(0.635, abs=0.03)
    assert frequencies[1] == pytest.approx(0.365, abs=0.03)

    # B: most popular value is 10 at ~77.8%.
    b_top = max(table["B"], key=lambda row: row[2])
    assert b_top[1] == "10"
    assert b_top[2] == pytest.approx(0.778, abs=0.03)

    # C: most popular value is 00 at ~67%.
    c_top = max(table["C"], key=lambda row: row[2])
    assert c_top[1] == "00"
    assert c_top[2] == pytest.approx(0.67, abs=0.04)

    # The wide IID-side segment has a dominant range element covering
    # most of the mass (the paper's G14 = 84.9% pseudo-random range).
    wide_label = max(
        s1_analysis.encoder.mined_segments,
        key=lambda m: (m.segment.first_nybble >= 15) * m.segment.nybble_count,
    ).segment.label
    range_mass = sum(
        f for _, value, f in table[wide_label] if "-" in value
    )
    assert range_mass > 0.6
