"""Ablation: BN vs first-order Markov chain (§4.5's design discussion).

The paper rejects Markov models because they "cannot directly handle
dependency between non-adjacent segments".  This bench quantifies the
claim on the Japanese-telco model, whose J-analog segment depends on
the *non-adjacent* segment C: the BN's held-out log-likelihood must
beat the chain's.
"""

import numpy as np

from repro.bayes.markov import MarkovChainModel
from repro.core.pipeline import EntropyIP


def test_ablation_bn_vs_markov(benchmark, networks, artifact):
    population = networks["JP"].population(0)
    rng = np.random.default_rng(11)
    train = population.sample(4000, rng)
    heldout = population.sample(4000, np.random.default_rng(12))

    def run():
        analysis = EntropyIP.fit(train)
        encoder = analysis.encoder
        codes_train = encoder.encode_set(train)
        chain = MarkovChainModel.fit(
            codes_train, encoder.variable_names, encoder.cardinalities
        )
        codes_heldout = encoder.encode_set(heldout)
        return {
            "bn_edges": len(analysis.model.network.edges()),
            "bn_ll": analysis.model.network.log_likelihood(codes_heldout),
            "markov_ll": chain.network.log_likelihood(codes_heldout),
            "n_heldout": len(heldout),
        }

    metrics = benchmark.pedantic(run, rounds=1, iterations=1)

    per_ip_bn = metrics["bn_ll"] / metrics["n_heldout"]
    per_ip_mm = metrics["markov_ll"] / metrics["n_heldout"]
    artifact(
        "ablation_model",
        "\n".join(
            [
                f"BN edges:                {metrics['bn_edges']}",
                f"BN held-out LL per IP:   {per_ip_bn:8.4f} nats",
                f"Markov held-out LL/IP:   {per_ip_mm:8.4f} nats",
                f"BN advantage:            {per_ip_bn - per_ip_mm:8.4f} nats/IP",
            ]
        ),
    )

    # The BN must model the held-out data at least as well as the chain
    # — strictly better when non-adjacent dependencies exist.
    assert per_ip_bn > per_ip_mm
    assert metrics["bn_edges"] >= 1
