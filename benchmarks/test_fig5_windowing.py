"""Fig. 5: windowed entropy analysis of dataset S1.

Every nybble-aligned (position, length) window's unnormalized entropy,
rendered as the triangular heat map of the paper's Fig. 5.
"""

import numpy as np

from repro.viz.figures import render_windowing_map


def test_fig5_windowing(benchmark, s1_analysis, artifact):
    result = benchmark.pedantic(
        lambda: s1_analysis.windowing(measure="entropy"),
        rounds=1,
        iterations=1,
    )
    artifact("fig5_windowing", render_windowing_map(result))

    by_key = {(c.position_bits, c.length_bits): c.score for c in result.cells}

    # Shape checks against the paper's Fig. 5 for S1:
    # (1) windows inside the constant /32 prefix region carry little
    #     entropy relative to same-length windows over the variable
    #     bits 40-56 region;
    assert by_key[(8, 16)] < by_key[(40, 16)]
    # (2) entropy grows with window length at a fixed position;
    assert by_key[(32, 32)] >= by_key[(32, 16)]
    # (3) wide windows approach the saturation bound log2(n).
    n = len(s1_analysis.address_set)
    assert result.max_score() <= np.log2(n) + 1e-9
    assert result.max_score() > 0.5 * np.log2(n)
