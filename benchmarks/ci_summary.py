"""Render BENCH_generation.json as a CI step-summary markdown table.

Usage::

    python benchmarks/ci_summary.py            # markdown to stdout
    python benchmarks/ci_summary.py --check    # exit 2 on gate regression

The perf CI job appends the markdown output to ``$GITHUB_STEP_SUMMARY``
(stage, addr/s, speedup vs the frozen seed baseline) and then runs
``--check``, which re-applies the same speedup gates the benchmark
suite asserts (see ``test_perf_generation``) so a regression turns the
(non-blocking) job red without anyone reading logs.  Gates only apply
to full-scale records; a reduced smoke record renders the table and
passes the check trivially.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Dict, List

from perf_generation import (
    BASELINE_PATH,
    DEFAULT_OUT,
    OUT_DIR,
    SMOKE_THRESHOLD,
)

#: Mirrors of the asserted gates in test_perf_generation (kept in one
#: import chain so they cannot drift).
from test_perf_generation import (
    FUSED_GATE_NETWORK,
    MAX_FAULT_OVERHEAD,
    MAX_INGEST_REFIT_FRACTION,
    MAX_SERVICE_OVERHEAD,
    MAX_STEADY_FLATNESS,
    MIN_BUCKET_SPEEDUP,
    MIN_END_TO_END_HEADLINE,
    MIN_END_TO_END_SPEEDUP,
    MIN_FIT_HEADLINE,
    MIN_FIT_SPEEDUP,
    MIN_FUSED_SPEEDUP,
    MIN_HEADLINE_SPEEDUP,
    MIN_INGEST_ROWS_PER_SECOND,
    MIN_ORACLE_SPEEDUP,
    MIN_PROCESS_SCALING_AT_4,
    MIN_STAGE_SPEEDUPS,
    MIN_STEADY_SPEEDUP,
    PROCESS_PARALLEL_MIN_CORES,
    VECTORIZED_STAGES,
)

FULL_SCALE_THRESHOLD = SMOKE_THRESHOLD


def default_record_path() -> pathlib.Path:
    """The record to summarize when ``--record`` is not given.

    A benchmark run writes to ``benchmarks/out/`` unless
    ``REPRO_BENCH_WRITE=1`` updated the committed repo-root record, so
    the summary reads whichever of the two exists — the more recently
    written one when both do (the CI perf job's fresh run beats the
    committed snapshot riding along in the checkout).
    """
    scratch = OUT_DIR / "BENCH_generation.json"
    candidates = [p for p in (scratch, DEFAULT_OUT) if p.exists()]
    if not candidates:
        return DEFAULT_OUT
    return max(candidates, key=lambda p: p.stat().st_mtime)


def _rate(stage: Dict) -> float:
    return (
        stage.get("addresses_per_second")
        or stage.get("candidates_per_second")
        or stage.get("probes_per_second")
        or 0.0
    )


def render_markdown(record: Dict) -> str:
    """The step-summary table for one benchmark record."""
    n = record.get("n_candidates", 0)
    lines = [
        "## Generation perf benchmark",
        "",
        f"`n_candidates={n:,}`, train={record.get('train_size', '?')}, "
        f"baseline `{record.get('baseline', {}).get('path', 'none')}`",
        "",
        "| network | stage | addr/s | speedup vs seed |",
        "|---|---|---:|---:|",
    ]
    for name, network in record.get("networks", {}).items():
        speedups = network.get("speedup_vs_seed", {})
        for stage_name, stage in network.get("stages", {}).items():
            speedup = speedups.get(stage_name)
            cell = f"{speedup}x" if speedup else "—"
            if not speedup and stage.get("speedup_vs_reference"):
                # Fit stages measure in-harness against the retained
                # scalar _fit_reference path, not the seed baseline.
                cell = f"{stage['speedup_vs_reference']}x vs reference"
            if not speedup and stage.get("speedup_vs_twostep"):
                # The fused stage measures in-harness against the
                # retained two-step sample→decode reference.
                verdict = "✅" if stage.get("bit_identical") else "❌"
                cell = (
                    f"{stage['speedup_vs_twostep']}x vs two-step, "
                    f"bit-identical {verdict}"
                )
            lines.append(
                f"| {name} | {stage_name} | {_rate(stage):,.0f} | {cell} |"
            )
        for stage_name, stage in network.get("scan", {}).items():
            speedup = (
                stage.get("speedup_vs_searchsorted")
                or stage.get("speedup_vs_reseed")
                or stage.get("speedup_vs_scalar")
            )
            if "speedup_vs_searchsorted" in stage:
                reference = "vs searchsorted"
            elif "speedup_vs_reseed" in stage:
                reference = "vs reseed"
            else:
                reference = "vs scalar"
            cell = f"{speedup}x {reference}" if speedup else "—"
            if "round_flatness_ratio" in stage:
                cell += (
                    f", round flatness {stage['round_flatness_ratio']}"
                    if speedup
                    else ""
                )
            lines.append(
                f"| {name} | scan/{stage_name} | {_rate(stage):,.0f} | "
                f"{cell} |"
            )
        workers = network.get("workers")
        if workers:
            verdict = "✅" if workers.get("bit_identical") else "❌"
            lines.append(
                f"| {name} | workers=4 engine | "
                f"{workers.get('addresses_per_second', 0):,.0f} | "
                f"bit-identical {verdict} |"
            )
    backends = record.get("backends")
    if backends:
        verdict = "✅" if backends.get("identical") else "❌"
        for backend_name in ("memory", "sharded64"):
            stage = backends.get(backend_name)
            if not stage:
                continue
            lines.append(
                f"| — | backend/{backend_name} "
                f"({backends.get('rows_offered', 0):,} rows) | "
                f"{stage.get('insert_rows_per_second', 0):,.0f} | "
                f"identical verdicts {verdict} |"
            )
    service = record.get("service_throughput")
    if service:
        verdict = "✅" if service.get("identical_to_direct") else "❌"
        lines.append(
            f"| — | service_throughput ({service.get('clients', 0)} "
            f"clients × {service.get('requests', 0)} requests) | "
            f"{service.get('rows_per_second', 0):,.0f} | "
            f"{service.get('requests_per_second', 0):,.1f} req/s, "
            f"p50 {service.get('p50_ms', 0)}ms / "
            f"p99 {service.get('p99_ms', 0)}ms, "
            f"bit-identical {verdict} |"
        )
    ingest = record.get("streaming_ingest")
    if ingest:
        verdict = "✅" if ingest.get("digest_equal_to_reference") else "❌"
        lines.append(
            f"| — | streaming_ingest ({ingest.get('batches', 0)} batches, "
            f"{ingest.get('rows_ingested', 0):,} rows) | "
            f"{ingest.get('rows_per_second', 0):,.0f} | "
            f"{ingest.get('refits', 0)} refits vs "
            f"{ingest.get('reference_refits', 0)} refit-every-batch "
            f"({ingest.get('speedup_vs_refit_every_batch', 0)}x, mean refit "
            f"{ingest.get('mean_refit_seconds', 0)}s), "
            f"digest-identical {verdict} |"
        )
    process_parallel = record.get("process_parallel")
    if process_parallel:
        verdict = "✅" if process_parallel.get("bit_identical") else "❌"
        process_runs = [
            run
            for run in process_parallel.get("runs", {}).values()
            if run.get("backend") == "process"
        ]
        best = max(
            process_runs,
            key=lambda run: run.get("speedup_vs_serial", 0.0),
            default={},
        )
        lines.append(
            f"| — | process_parallel "
            f"({process_parallel.get('available_cpus', 0)} cpus) | "
            f"{best.get('addresses_per_second', 0):,.0f} | "
            f"{best.get('workers', 0)} process workers "
            f"{best.get('speedup_vs_serial', 0)}x vs serial "
            f"(active {best.get('active_backend', '—')}), "
            f"bit-identical {verdict} |"
        )
    fault = record.get("fault_overhead")
    if fault:
        verdict = "✅" if fault.get("bit_identical") else "❌"
        lines.append(
            f"| — | fault_overhead (disarmed sites) | "
            f"{fault.get('addresses_per_second', 0):,.0f} | "
            f"armed/disarmed {fault.get('overhead_ratio', 0)}x, "
            f"probe {fault.get('disarmed_site_ns', 0)}ns, "
            f"bit-identical {verdict} |"
        )
    return "\n".join(lines)


def check_gates(record: Dict) -> List[str]:
    """Re-apply the asserted speedup gates; return failure messages."""
    failures: List[str] = []
    networks = record.get("networks", {})
    if not networks:
        return ["record has no networks"]
    for name, network in networks.items():
        workers = network.get("workers")
        if workers is not None and not workers.get("bit_identical"):
            failures.append(f"{name}: workers=4 output not bit-identical")
        fused = network.get("stages", {}).get("sample_decode_fused")
        if fused is not None and not fused.get("bit_identical"):
            failures.append(
                f"{name}: fused sample→packed output not bit-identical "
                "to the two-step reference"
            )
        steady = network.get("scan", {}).get("campaign_steady_state")
        if steady is not None and not steady.get("identical_to_reseed"):
            failures.append(
                f"{name}: steady-state campaign diverged from the "
                "re-seeding reference"
            )
    backends = record.get("backends")
    if backends is not None and not backends.get("identical"):
        failures.append(
            "storage backends returned different verdicts under the "
            "identical insert/lookup schedule"
        )
    service = record.get("service_throughput")
    if service is not None and not service.get("identical_to_direct"):
        failures.append(
            "service-served streams not bit-identical to the direct "
            "library path"
        )
    ingest = record.get("streaming_ingest")
    if ingest is not None:
        # Deterministic correctness gates: applied at any scale.
        if not ingest.get("digest_equal_to_reference"):
            failures.append(
                "streaming ingest's final model digest differs from the "
                "refit-every-batch reference"
            )
        if ingest.get("refits", 0) >= ingest.get("reference_refits", 0):
            failures.append(
                f"streaming ingest paid {ingest.get('refits')} refits — "
                f"not fewer than the reference's "
                f"{ingest.get('reference_refits')} (one per batch)"
            )
        if ingest.get("drift_refits", 0) < 1:
            failures.append(
                "streaming ingest's drift signal never fired on the "
                "feed's renumbering event"
            )
    process_parallel = record.get("process_parallel")
    if process_parallel is not None and not process_parallel.get(
        "bit_identical"
    ):
        failures.append(
            "process-parallel runs not bit-identical to the serial "
            "reference"
        )
    fault = record.get("fault_overhead")
    if fault is not None and not fault.get("bit_identical"):
        failures.append(
            "armed-but-never-matching fault plan changed the generated "
            "stream (disarmed vs armed draws differ)"
        )
    if record.get("n_candidates", 0) < FULL_SCALE_THRESHOLD:
        return failures  # smoke record: no throughput gates
    if fault is not None:
        ratio = fault.get("overhead_ratio", 0.0)
        if ratio > MAX_FAULT_OVERHEAD:
            failures.append(
                f"fault-site overhead {ratio}x > {MAX_FAULT_OVERHEAD}x "
                "(armed vs disarmed draw)"
            )
    if (
        process_parallel is not None
        and process_parallel.get("available_cpus", 0)
        >= PROCESS_PARALLEL_MIN_CORES
    ):
        run = process_parallel.get("runs", {}).get("process_4", {})
        if run.get("active_backend") != "process":
            failures.append(
                "process_4 run degraded to threads on a "
                f"{process_parallel.get('available_cpus')}-core host"
            )
        if run.get("speedup_vs_serial", 0.0) < MIN_PROCESS_SCALING_AT_4:
            failures.append(
                f"process executor at 4 workers "
                f"{run.get('speedup_vs_serial', 0.0)}x < "
                f"{MIN_PROCESS_SCALING_AT_4}x vs serial"
            )
    if ingest is not None:
        refit_cap = ingest.get("reference_refits", 0) * MAX_INGEST_REFIT_FRACTION
        if ingest.get("refits", 0) > refit_cap:
            failures.append(
                f"streaming ingest refit count {ingest.get('refits')} > "
                f"{MAX_INGEST_REFIT_FRACTION:.0%} of the reference's "
                f"{ingest.get('reference_refits')}"
            )
        rate = ingest.get("rows_per_second", 0.0)
        if rate < MIN_INGEST_ROWS_PER_SECOND:
            failures.append(
                f"streaming ingest {rate:,.0f} rows/s < "
                f"{MIN_INGEST_ROWS_PER_SECOND:,.0f} floor"
            )
    if service is not None:
        p50 = service.get("p50_ms", 0.0)
        p99 = service.get("p99_ms", 0.0)
        if not p99 >= p50 > 0:
            failures.append(
                f"service latency accounting not live/sane "
                f"(p50={p50}ms, p99={p99}ms)"
            )
        overhead = service.get("overhead_vs_direct", 0.0)
        if overhead > MAX_SERVICE_OVERHEAD:
            failures.append(
                f"service overhead {overhead}x > {MAX_SERVICE_OVERHEAD}x "
                "vs the serial direct path"
            )
    headline_end_to_end = 0.0
    headline_fit = 0.0
    for name, network in networks.items():
        speedups = network.get("speedup_vs_seed", {})
        fit = network.get("stages", {}).get("fit", {}).get(
            "speedup_vs_reference", 0.0
        )
        headline_fit = max(headline_fit, fit)
        if fit < MIN_FIT_SPEEDUP:
            failures.append(
                f"{name}: fit {fit}x < {MIN_FIT_SPEEDUP}x vs the scalar "
                "reference"
            )
        for stage in VECTORIZED_STAGES:
            if speedups.get(stage, 0.0) < MIN_STAGE_SPEEDUPS[stage]:
                failures.append(
                    f"{name}: {stage} {speedups.get(stage)}x < "
                    f"{MIN_STAGE_SPEEDUPS[stage]}x floor"
                )
        if name == FUSED_GATE_NETWORK:
            fused_speedup = (
                network.get("stages", {})
                .get("sample_decode_fused", {})
                .get("speedup_vs_twostep", 0.0)
            )
            if fused_speedup < MIN_FUSED_SPEEDUP:
                failures.append(
                    f"{name}: fused sample→packed {fused_speedup}x < "
                    f"{MIN_FUSED_SPEEDUP}x vs the two-step reference"
                )
        if (
            max((speedups.get(stage, 0.0) for stage in VECTORIZED_STAGES))
            < MIN_HEADLINE_SPEEDUP
        ):
            failures.append(
                f"{name}: no vectorized stage at {MIN_HEADLINE_SPEEDUP}x"
            )
        end_to_end = speedups.get("end_to_end", 0.0)
        headline_end_to_end = max(headline_end_to_end, end_to_end)
        if end_to_end < MIN_END_TO_END_SPEEDUP:
            failures.append(
                f"{name}: end_to_end {end_to_end}x < "
                f"{MIN_END_TO_END_SPEEDUP}x floor"
            )
        scan = network.get("scan", {})
        oracle = scan.get("oracle", {}).get("speedup_vs_scalar", 0.0)
        if oracle < MIN_ORACLE_SPEEDUP:
            failures.append(
                f"{name}: oracle sweep {oracle}x < {MIN_ORACLE_SPEEDUP}x"
            )
        bucket = scan.get("candidate_oracle", {}).get(
            "speedup_vs_searchsorted", 0.0
        )
        if bucket < MIN_BUCKET_SPEEDUP:
            failures.append(
                f"{name}: candidate oracle {bucket}x < "
                f"{MIN_BUCKET_SPEEDUP}x vs searchsorted"
            )
        steady = scan.get("campaign_steady_state", {})
        flatness = steady.get("round_flatness_ratio", 0.0)
        if flatness > MAX_STEADY_FLATNESS:
            failures.append(
                f"{name}: steady-state round flatness {flatness} > "
                f"{MAX_STEADY_FLATNESS} (per-round cost not flat)"
            )
        steady_speedup = steady.get("speedup_vs_reseed", 0.0)
        if steady_speedup < MIN_STEADY_SPEEDUP:
            failures.append(
                f"{name}: steady-state campaign {steady_speedup}x < "
                f"{MIN_STEADY_SPEEDUP}x vs the re-seeding reference"
            )
    if headline_end_to_end < MIN_END_TO_END_HEADLINE:
        failures.append(
            f"no network reached the {MIN_END_TO_END_HEADLINE}x "
            f"end-to-end headline (best {headline_end_to_end}x)"
        )
    if headline_fit < MIN_FIT_HEADLINE:
        failures.append(
            f"no network reached the {MIN_FIT_HEADLINE}x fit headline "
            f"vs the scalar reference (best {headline_fit}x)"
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--record", type=pathlib.Path, default=None,
        help=(
            "benchmark record to summarize (default: the most recent "
            "of benchmarks/out/BENCH_generation.json and the committed "
            "repo-root BENCH_generation.json)"
        ),
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit 2 when any asserted speedup gate regressed",
    )
    args = parser.parse_args(argv)
    if args.record is None:
        args.record = default_record_path()
    if not args.record.exists():
        print(f"benchmark record not found: {args.record}", file=sys.stderr)
        return 1
    record = json.loads(args.record.read_text())
    if args.check:
        failures = check_gates(record)
        if failures:
            print("perf gates regressed:", file=sys.stderr)
            for failure in failures:
                print(f"  - {failure}", file=sys.stderr)
            return 2
        print("perf gates OK")
        return 0
    print(render_markdown(record))
    if not BASELINE_PATH.exists():
        print("\n> ⚠️ seed baseline missing; speedups unavailable")
    return 0


if __name__ == "__main__":
    sys.exit(main())
