"""Fig. 9: R1 entropy vs ACR + BN browser.

The paper reads R1 as: bits 28-64 discriminate prefixes, bits 64-124
nearly constant (no pseudo-random IIDs), and the last hex character is
1 or 2 (point-to-point links).  H_S = 4.6 in the paper.
"""

from repro.core.pipeline import EntropyIP
from repro.viz.figures import render_acr_entropy_plot, render_browser


def test_fig9_routers(benchmark, networks, artifact):
    def analyze():
        sample = networks["R1"].sample(5000, seed=0)
        return EntropyIP.fit(sample)

    analysis = benchmark.pedantic(analyze, rounds=1, iterations=1)
    artifact(
        "fig9_routers",
        render_acr_entropy_plot(analysis, title="Fig 9(a): R1")
        + "\n\n"
        + render_browser(analysis.browse(), title="Fig 9(b): BN browser"),
    )

    entropy = analysis.entropy()
    acr = analysis.acr()

    # Low total entropy (paper: 4.6).
    assert analysis.total_entropy() < 8
    # Prefix-discriminating region: entropy and ACR both active in
    # bits 32-64.
    assert float(entropy[8:14].mean()) > 0.3
    assert float(acr[8:14].mean()) > 0.2
    # IID region near-constant except the trailing nybble (1-or-2:
    # a binary choice is 0.25 normalized entropy, log2/log16).
    assert float(entropy[16:31].max()) < 0.1
    assert entropy[31] > 0.2
    # Last segment is 1-or-2 (point-to-point).
    last = analysis.encoder.mined_segments[-1]
    point_values = {v.low for v in last.values if not v.is_range}
    assert {1, 2} <= point_values
