"""Extension bench: the §1 discovery goals, measured.

Section 1 states the ultimate goal: "discover Classless Inter-Domain
Routing (CIDR) prefixes, Interior Gateway Protocol (IGP) subnets,
network identifiers, and interface identifiers".  Two machine-checkable
pieces of that goal:

1. **Subnet discovery** via the MRA prefix trie: recover R1's deployed
   /64 structure from raw addresses, no model needed.
2. **rDNS harvesting** (RFC 7707, one of the paper's data sources):
   enumerate a prefix's PTR-holding addresses with a query count
   proportional to the populated branches, not the address space.
"""

from repro.ipv6.address import IPv6Address
from repro.ipv6.prefix import Prefix
from repro.ipv6.trie import discover_subnets
from repro.scan.generator import prefixes64
from repro.scan.rdns import rdns_harvest


def test_ext_subnet_discovery(benchmark, networks, artifact):
    population = networks["R1"].population(0)
    true_64s = prefixes64(population.to_ints(), 32)

    def run():
        # min_length=64 pins the walk at the RFC 4291 subnet size, so
        # balanced splits higher up (aggregation points between
        # subnets) are descended rather than reported.
        return discover_subnets(
            population.to_ints(), min_members=1, max_length=64,
            min_length=64, split_ratio=0.9,
        )

    subnets = benchmark.pedantic(run, rounds=1, iterations=1)
    discovered_64s = {
        s.prefix.network.value >> 64
        for s in subnets
        if s.prefix.length == 64
    }
    recovered = len(discovered_64s & true_64s)
    artifact(
        "ext_subnet_discovery",
        "\n".join(
            [
                f"R1 population:       {len(population)} addresses",
                f"true /64 subnets:    {len(true_64s)}",
                f"discovered subnets:  {len(subnets)}",
                f"exact /64 matches:   {recovered}",
            ]
        ),
    )
    # The trie recovers the deployed /64 set exactly: full coverage,
    # no false positives.
    assert recovered == len(true_64s)
    assert discovered_64s == true_64s


def test_ext_rdns_walk(benchmark, networks, artifact):
    population = networks["R3"].population(0)
    root = Prefix(IPv6Address(0x2A0301F0 << 96), 32)

    def run():
        return rdns_harvest(
            population, root, coverage=0.6, seed=1, max_queries=5_000_000
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    artifact(
        "ext_rdns_walk",
        "\n".join(
            [
                f"R3 population:     {len(population)} addresses",
                f"PTR records found: {len(result.addresses)}",
                f"DNS queries used:  {result.queries}",
                f"queries/record:    {result.queries / max(1, len(result.addresses)):.1f}",
                f"truncated:         {result.truncated}",
            ]
        ),
    )
    assert not result.truncated
    assert len(result.addresses) > 0.4 * len(population)
    # The whole point of the technique: the query count is within a
    # small constant of the populated-branch count, nowhere near the
    # 2^96 names under the /32.
    assert result.queries < 40 * len(result.addresses) + 1000
