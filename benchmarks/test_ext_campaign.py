"""Extension bench: budgeted scanning campaign with discovery curve.

The operational version of §5.5: probe R1 in rounds under a fixed
budget and record the cumulative yield, comparing the static model with
the adaptive bootstrap loop (confirmed hits folded back into training).
"""

import numpy as np

from repro.scan.campaign import run_campaign
from repro.scan.responder import SimulatedResponder
from repro.viz.ascii import sparkline


def test_ext_scan_campaign(benchmark, networks, artifact):
    network = networks["R1"]
    population = network.population(0)
    responder = SimulatedResponder(
        population, ping_rate=network.ping_rate, seed=0
    )
    training = population.sample(1000, np.random.default_rng(5))

    def run():
        static = run_campaign(training, responder, probe_budget=30_000,
                              round_size=5_000, adaptive=False, seed=1)
        adaptive = run_campaign(training, responder, probe_budget=30_000,
                                round_size=5_000, adaptive=True, seed=1)
        return static, adaptive

    static, adaptive = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        "R1 scanning campaign, 30K probe budget, 5K rounds",
        f"static:   {static.total_hits:>6} hits, "
        f"{len(static.discovered_prefixes64):>5} new /64s   "
        f"curve {sparkline(static.discovery_curve(), 0, max(static.discovery_curve()))}",
        f"adaptive: {adaptive.total_hits:>6} hits, "
        f"{len(adaptive.discovered_prefixes64):>5} new /64s   "
        f"curve {sparkline(adaptive.discovery_curve(), 0, max(adaptive.discovery_curve()))}",
    ]
    for label, result in (("static", static), ("adaptive", adaptive)):
        for round_ in result.rounds:
            lines.append(
                f"  {label:<8} round {round_.index}: "
                f"{round_.hits:>5} hits / {round_.probes_sent} probes "
                f"({100 * round_.hit_rate:5.2f}%)"
            )
    artifact("ext_campaign", "\n".join(lines))

    # Both campaigns respect the budget and keep finding targets.
    assert static.total_probes <= 30_000
    assert adaptive.total_probes <= 30_000
    assert static.total_hits > 500
    assert adaptive.total_hits > 500
    # Yield curves are monotone and the per-round hit rate stays
    # positive through the budget (the model does not run dry on R1).
    for result in (static, adaptive):
        curve = result.discovery_curve()
        assert curve == sorted(curve)
        assert all(r.hits > 0 for r in result.rounds)
