"""Fig. 6: entropy of the aggregate datasets AS, AR, AC, AT.

The paper's category-level profile plot.  Asserted shapes:
- servers (AS) are the least random, with entropy rising toward bit 128;
- routers (AR) dip at bits 68-72 and drop toward ~0.5 at bits 88-104
  (partial Modified EUI-64);
- clients (AC) have near-1 IID entropy with ~0.8 at bits 68-72;
- BitTorrent clients (AT) differ from AC mainly at bits 88-104.
"""

import numpy as np

from repro.datasets.aggregates import aggregate_by_name
from repro.stats.entropy import nybble_entropies
from repro.viz.ascii import sparkline


def test_fig6_aggregate_entropy(benchmark, artifact):
    def compute():
        profiles = {}
        for name in ("AS", "AR", "AC", "AT"):
            sample = aggregate_by_name(name, n=30_000)
            profiles[name] = nybble_entropies(sample)
        return profiles

    profiles = benchmark.pedantic(compute, rounds=1, iterations=1)

    lines = ["Fig 6: per-nybble entropy of aggregates (32 nybbles)"]
    for name, profile in profiles.items():
        lines.append(f"{name}  H_S={profile.sum():5.1f}  {sparkline(profile)}")
        lines.append(
            f"     bits 68-72: {profile[17]:.2f}   "
            f"bits 88-104: {profile[22:26].mean():.2f}"
        )
    artifact("fig6_aggregates", "\n".join(lines))

    totals = {k: float(v.sum()) for k, v in profiles.items()}
    assert totals["AS"] == min(totals.values())
    assert profiles["AS"][-1] > profiles["AS"][20]          # rising tail
    assert 0.3 < float(profiles["AR"][22:26].mean()) < 0.7  # EUI-64 drop
    assert 0.7 < float(profiles["AC"][17]) < 0.95           # u-bit dip
    assert float(np.median(profiles["AC"][16:])) > 0.9      # random IIDs
    gap_88_104 = abs(profiles["AC"][22:26] - profiles["AT"][22:26]).mean()
    gap_elsewhere = abs(profiles["AC"][28:] - profiles["AT"][28:]).mean()
    assert gap_88_104 > gap_elsewhere                        # AT vs AC
